//! Ranks, communicators, point-to-point messaging and collectives.
//!
//! A [`World`] spawns `n` threads, one per rank, each receiving a [`Comm`]
//! that spans all ranks. Sub-communicators are built collectively with
//! [`Comm::split`] (MPI `MPI_Comm_split` semantics) or [`Comm::group`]
//! (explicit rank lists, used for the input / rendering / output processor
//! groups of the pipeline).
//!
//! Matching: a receive matches on `(communicator, source rank, tag)`.
//! Messages that arrive before they are asked for are parked in a per-thread
//! pending queue, so arbitrary interleavings are safe. A blocking receive
//! that stays unmatched for [`RECV_TIMEOUT`] panics with a diagnostic
//! instead of deadlocking the test suite.
//!
//! Plain sends are buffered and never block. [`Comm::isend`] additionally
//! returns a [`SendHandle`] that completes when the *receiver matches* the
//! message (rendezvous semantics) — the backpressure primitive behind the
//! pipeline's bounded prefetch send queue.

use crate::fault::{FaultPlan, SendFault};
use crate::obs;
use crate::stats::TrafficStats;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long a blocking receive waits before declaring a deadlock.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Tag bit reserved for internal collective traffic; user tags must not
/// set it.
const COLL_BIT: u64 = 1 << 63;

/// Error of [`Comm::recv_timeout`]: the deadline expired with no matching
/// message. Unlike the [`RECV_TIMEOUT`] deadlock guard this is a normal,
/// recoverable outcome — the building block of the pipeline's per-step
/// delivery deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvTimeout;

/// Completion flag of a non-blocking send, signalled when the receiver
/// *matches* the message (not when the transport buffers it — the channel
/// always buffers, so buffering completion would make every wait a no-op
/// and [`Comm::isend`] useless as a backpressure primitive).
#[derive(Default)]
struct AckState {
    done: Mutex<bool>,
    cv: Condvar,
}

impl AckState {
    fn signal(&self) {
        *self.done.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

struct Envelope {
    comm: u64,
    src_world: usize,
    tag: u64,
    payload: Box<dyn Any + Send>,
    /// Present on [`Comm::isend`] messages; signalled on match.
    ack: Option<Arc<AckState>>,
}

impl Envelope {
    /// Consume the envelope: signal its sender (if waiting) and hand the
    /// payload over. Every match point must route through this.
    fn open(self) -> (usize, Box<dyn Any + Send>) {
        if let Some(ack) = self.ack {
            ack.signal();
        }
        (self.src_world, self.payload)
    }
}

/// Handle to an in-flight [`Comm::isend`]. The send *completes* when the
/// receiver matches the message — rendezvous semantics, so waiting on a
/// handle throttles the sender to the receiver's consumption rate.
///
/// Dropping a handle without waiting is allowed (fire-and-forget, the
/// same as [`Comm::send`]).
pub struct SendHandle {
    ack: Arc<AckState>,
    dst_world: usize,
    tag: u64,
}

impl SendHandle {
    /// Whether the receiver has matched the message yet.
    pub fn is_complete(&self) -> bool {
        *self.ack.done.lock().unwrap()
    }

    /// Block until the receiver matches the message. Panics after
    /// [`RECV_TIMEOUT`] without completion (deadlock guard, mirroring
    /// blocking receives).
    pub fn wait(self) {
        let deadline = std::time::Instant::now() + RECV_TIMEOUT;
        let mut done = self.ack.done.lock().unwrap();
        while !*done {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let (d, timeout) = self.ack.cv.wait_timeout(done, remaining).unwrap();
            done = d;
            if timeout.timed_out() && !*done {
                panic!(
                    "isend(dst={}, tag={}) unmatched after {:?} — deadlock?",
                    self.dst_world, self.tag, RECV_TIMEOUT
                );
            }
        }
    }
}

/// Wait for every handle to complete, in any completion order.
pub fn wait_all<I: IntoIterator<Item = SendHandle>>(handles: I) {
    for h in handles {
        h.wait();
    }
}

struct Shared {
    senders: Vec<Sender<Envelope>>,
    stats: Arc<TrafficStats>,
    /// Fault schedule consulted by lossy sends; `None` = reliable world.
    faults: Option<Arc<FaultPlan>>,
}

struct Mailbox {
    rx: Receiver<Envelope>,
    pending: Vec<Envelope>,
}

/// Spawner for a world of thread-ranks.
pub struct World;

impl World {
    /// Spawn `n` ranks, run `f` on each with its world communicator, and
    /// return the per-rank results in rank order.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        Self::run_traced(n, TrafficStats::new(), f)
    }

    /// Like [`World::run`] but records message/byte traffic into `stats`.
    pub fn run_traced<R, F>(n: usize, stats: Arc<TrafficStats>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        Self::run_faulted(n, stats, None, f)
    }

    /// Like [`World::run_traced`] but with an optional fault plan: lossy
    /// sends consult it, and sends to a rank that has already exited (a
    /// scripted failure) are swallowed instead of panicking.
    pub fn run_faulted<R, F>(
        n: usize,
        stats: Arc<TrafficStats>,
        faults: Option<Arc<FaultPlan>>,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        assert!(n > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared { senders, stats, faults });
        let f = &f;
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let comm = Comm {
                            shared,
                            mailbox: Rc::new(RefCell::new(Mailbox { rx, pending: Vec::new() })),
                            id: 0,
                            ranks: Arc::new((0..n).collect()),
                            my_rank: rank,
                            coll_seq: Cell::new(0),
                            split_seq: Cell::new(0),
                        };
                        f(comm)
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

/// A communicator: a set of ranks that can exchange messages and run
/// collectives. Cheap to clone within its owning thread; not `Send`.
pub struct Comm {
    shared: Arc<Shared>,
    mailbox: Rc<RefCell<Mailbox>>,
    /// Globally unique communicator id, identical on every member.
    id: u64,
    /// Communicator rank -> world rank.
    ranks: Arc<Vec<usize>>,
    /// This rank's position within `ranks`.
    my_rank: usize,
    /// Collective sequence number (kept in lock-step by matched calls).
    coll_seq: Cell<u64>,
    /// Number of `split`/`group` calls made on this communicator.
    split_seq: Cell<u64>,
}

impl Comm {
    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// The world rank behind communicator rank `r`.
    #[inline]
    pub fn world_rank(&self, r: usize) -> usize {
        self.ranks[r]
    }

    /// The traffic counters of this world.
    pub fn stats(&self) -> &TrafficStats {
        &self.shared.stats
    }

    // ------------------------------------------------------------------
    // point-to-point
    // ------------------------------------------------------------------

    /// Buffered (non-blocking) send of any `Send + 'static` value.
    ///
    /// Traffic accounting charges `size_of::<T>()`; use
    /// [`Comm::send_with_size`] when the payload owns heap data whose size
    /// matters to the experiment.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) {
        self.send_with_size(dst, tag, value, std::mem::size_of::<T>() as u64)
    }

    /// Buffered send with an explicit payload byte count for accounting.
    pub fn send_with_size<T: Send + 'static>(&self, dst: usize, tag: u64, value: T, bytes: u64) {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        self.send_raw(dst, tag, Box::new(value), bytes);
    }

    /// Non-blocking send returning a completion handle; completion means
    /// the destination has *matched* (consumed) the message. See
    /// [`Comm::send`] for the byte-accounting caveat.
    pub fn isend<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) -> SendHandle {
        self.isend_with_size(dst, tag, value, std::mem::size_of::<T>() as u64)
    }

    /// [`Comm::isend`] with an explicit payload byte count for accounting.
    pub fn isend_with_size<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
        bytes: u64,
    ) -> SendHandle {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        let ack = Arc::new(AckState::default());
        let dst_world = self.ranks[dst];
        self.send_raw_acked(dst, tag, Box::new(value), bytes, Some(Arc::clone(&ack)));
        SendHandle { ack, dst_world, tag }
    }

    /// Buffered send subject to the world's fault plan: when a plan is
    /// active the message may be dropped on the wire or delayed by the
    /// plan's `delay_ms` (the sender blocks, modelling a congested link).
    /// Without a plan this is exactly [`Comm::send_with_size`].
    pub fn send_lossy_with_size<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
        bytes: u64,
    ) {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        match self.roll_send_fault(dst, tag) {
            Some(SendFault::Drop) => {
                // the sender did transmit it: charge the wire, deliver nothing
                self.shared.stats.record_edge(
                    self.ranks[self.my_rank],
                    self.ranks[dst],
                    tag,
                    bytes,
                );
            }
            Some(SendFault::Delay(d)) => {
                std::thread::sleep(d);
                self.send_raw(dst, tag, Box::new(value), bytes);
            }
            None => self.send_raw(dst, tag, Box::new(value), bytes),
        }
    }

    /// [`Comm::isend_with_size`] subject to the fault plan. A dropped send
    /// returns an already-completed handle (the loss happens on the wire,
    /// after the local buffer was handed off), so [`SendHandle::wait`]
    /// never hangs on a dropped message.
    pub fn isend_lossy_with_size<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
        bytes: u64,
    ) -> SendHandle {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        match self.roll_send_fault(dst, tag) {
            Some(SendFault::Drop) => {
                self.shared.stats.record_edge(
                    self.ranks[self.my_rank],
                    self.ranks[dst],
                    tag,
                    bytes,
                );
                let ack = Arc::new(AckState::default());
                ack.signal();
                SendHandle { ack, dst_world: self.ranks[dst], tag }
            }
            Some(SendFault::Delay(d)) => {
                std::thread::sleep(d);
                self.isend_with_size(dst, tag, value, bytes)
            }
            None => self.isend_with_size(dst, tag, value, bytes),
        }
    }

    fn roll_send_fault(&self, dst: usize, tag: u64) -> Option<SendFault> {
        self.shared.faults.as_ref()?.send_fault(self.ranks[self.my_rank], self.ranks[dst], tag)
    }

    fn send_raw(&self, dst: usize, tag: u64, payload: Box<dyn Any + Send>, bytes: u64) {
        self.send_raw_acked(dst, tag, payload, bytes, None);
    }

    fn send_raw_acked(
        &self,
        dst: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: u64,
        ack: Option<Arc<AckState>>,
    ) {
        let dst_world = self.ranks[dst];
        self.shared.stats.record_edge(self.ranks[self.my_rank], dst_world, tag, bytes);
        let result = self.shared.senders[dst_world].send(Envelope {
            comm: self.id,
            src_world: self.ranks[self.my_rank],
            tag,
            payload,
            ack,
        });
        if let Err(e) = result {
            // A dropped receiver means the destination thread returned. In
            // a fault-injected world that is a scripted rank death — the
            // send completes locally (like MPI eager to a failed process)
            // so survivors keep running; otherwise it is a real bug.
            if self.shared.faults.is_some() {
                if let Some(ack) = e.0.ack {
                    ack.signal();
                }
            } else {
                panic!("receiving rank has exited");
            }
        }
    }

    /// Blocking receive of a `T` from communicator rank `src` with `tag`.
    ///
    /// Panics if the matched payload is not a `T`, or after
    /// [`RECV_TIMEOUT`] without a match (deadlock guard).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        self.recv_matched(Some(self.ranks[src]), tag).1
    }

    /// Blocking receive from *any* source; returns `(source rank, value)`.
    pub fn recv_any<T: Send + 'static>(&self, tag: u64) -> (usize, T) {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        let (src_world, v) = self.recv_matched(None, tag);
        let src = self
            .ranks
            .iter()
            .position(|&w| w == src_world)
            .expect("message from a rank outside this communicator");
        (src, v)
    }

    /// Non-blocking receive: `Some(value)` if a matching message has
    /// already arrived.
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Option<T> {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        let src_world = self.ranks[src];
        let mut mb = self.mailbox.borrow_mut();
        // drain the channel into pending first so we see everything
        while let Ok(env) = mb.rx.try_recv() {
            mb.pending.push(env);
        }
        let pos = mb
            .pending
            .iter()
            .position(|e| e.comm == self.id && e.src_world == src_world && e.tag == tag)?;
        let (_, payload) = mb.pending.swap_remove(pos).open();
        Some(Self::downcast(payload, tag))
    }

    /// Deadline-aware receive: block for at most `timeout` waiting for a
    /// match from communicator rank `src`, then give up with
    /// [`RecvTimeout`]. The message can still be claimed by a later
    /// receive if it arrives afterwards (it parks in pending as usual).
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<T, RecvTimeout> {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        match self.recv_matched_deadline(Some(self.ranks[src]), tag, timeout) {
            Some((_, v)) => Ok(v),
            None => Err(RecvTimeout),
        }
    }

    /// [`Comm::recv_timeout`] with `Option` sugar: `None` on deadline.
    pub fn try_recv_for<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Option<T> {
        self.recv_timeout(src, tag, timeout).ok()
    }

    /// Deadline-aware receive from *any* source: `Some((source rank,
    /// value))`, or `None` once `timeout` expires unmatched.
    pub fn recv_any_for<T: Send + 'static>(
        &self,
        tag: u64,
        timeout: Duration,
    ) -> Option<(usize, T)> {
        assert!(tag & COLL_BIT == 0, "user tags must not set the top bit");
        let (src_world, v) = self.recv_matched_deadline(None, tag, timeout)?;
        let src = self
            .ranks
            .iter()
            .position(|&w| w == src_world)
            .expect("message from a rank outside this communicator");
        Some((src, v))
    }

    fn recv_matched_deadline<T: Send + 'static>(
        &self,
        src_world: Option<usize>,
        tag: u64,
        timeout: Duration,
    ) -> Option<(usize, T)> {
        let mut mb = self.mailbox.borrow_mut();
        let matches = |e: &Envelope| {
            e.comm == self.id && e.tag == tag && src_world.is_none_or(|s| e.src_world == s)
        };
        if let Some(pos) = mb.pending.iter().position(matches) {
            let (src, payload) = mb.pending.swap_remove(pos).open();
            return Some((src, Self::downcast(payload, tag)));
        }
        let _sp = obs::auto_span(obs::Phase::CommRecv, obs::NO_STEP);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match mb.rx.recv_timeout(remaining) {
                Ok(env) => {
                    if matches(&env) {
                        let (src, payload) = env.open();
                        return Some((src, Self::downcast(payload, tag)));
                    }
                    mb.pending.push(env);
                }
                Err(_) => return None,
            }
        }
    }

    fn recv_matched<T: Send + 'static>(&self, src_world: Option<usize>, tag: u64) -> (usize, T) {
        let mut mb = self.mailbox.borrow_mut();
        let matches = |e: &Envelope| {
            e.comm == self.id && e.tag == tag && src_world.is_none_or(|s| e.src_world == s)
        };
        if let Some(pos) = mb.pending.iter().position(matches) {
            let (src, payload) = mb.pending.swap_remove(pos).open();
            return (src, Self::downcast(payload, tag));
        }
        // only the actually-blocking path gets a span; matched-from-pending
        // receives above are free
        let _sp = obs::auto_span(obs::Phase::CommRecv, obs::NO_STEP);
        let deadline = std::time::Instant::now() + RECV_TIMEOUT;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let env = mb.rx.recv_timeout(remaining).unwrap_or_else(|_| {
                panic!(
                    "rank {} (comm {}): recv(src={:?}, tag={}) unmatched after {:?} — deadlock?",
                    self.my_rank, self.id, src_world, tag, RECV_TIMEOUT
                )
            });
            if matches(&env) {
                let (src, payload) = env.open();
                return (src, Self::downcast(payload, tag));
            }
            mb.pending.push(env);
        }
    }

    fn downcast<T: 'static>(payload: Box<dyn Any + Send>, tag: u64) -> T {
        *payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("type mismatch on tag {tag}: expected {}", std::any::type_name::<T>())
        })
    }

    // ------------------------------------------------------------------
    // collectives (must be called by all ranks of the communicator, in
    // the same order)
    // ------------------------------------------------------------------

    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLL_BIT | seq
    }

    fn coll_send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) {
        self.send_raw(dst, tag, Box::new(value), std::mem::size_of::<T>() as u64);
    }

    fn coll_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        self.recv_matched(Some(self.ranks[src]), tag).1
    }

    /// Block until every rank of the communicator has entered the barrier.
    pub fn barrier(&self) {
        let _sp = obs::auto_span(obs::Phase::Barrier, obs::NO_STEP);
        let tag = self.next_coll_tag();
        // gather to 0, then broadcast
        if self.my_rank == 0 {
            for src in 1..self.size() {
                let () = self.coll_recv(src, tag);
            }
            for dst in 1..self.size() {
                self.coll_send(dst, tag, ());
            }
        } else {
            self.coll_send(0, tag, ());
            let () = self.coll_recv(0, tag);
        }
    }

    /// Broadcast `value` from `root` to every rank; each rank passes its
    /// own `value` (ignored off-root) and receives the root's.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: T) -> T {
        let tag = self.next_coll_tag();
        if self.my_rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.coll_send(dst, tag, value.clone());
                }
            }
            value
        } else {
            self.coll_recv(root, tag)
        }
    }

    /// Gather one value from every rank to `root`; returns `Some(values)`
    /// in rank order at the root, `None` elsewhere.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        if self.my_rank == root {
            let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(value);
            for src in 0..self.size() {
                if src != root {
                    slots[src] = Some(self.coll_recv(src, tag));
                }
            }
            Some(slots.into_iter().map(|s| s.unwrap()).collect())
        } else {
            self.coll_send(root, tag, value);
            None
        }
    }

    /// Gather one value from every rank to every rank (rank order).
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.bcast(0, gathered.unwrap_or_default())
    }

    /// [`Comm::bcast`] with an explicit per-message byte count for exact
    /// traffic accounting of heap payloads.
    pub fn bcast_with_size<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: T,
        bytes: u64,
    ) -> T {
        let tag = self.next_coll_tag();
        if self.my_rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_raw(dst, tag, Box::new(value.clone()), bytes);
                }
            }
            value
        } else {
            self.coll_recv(root, tag)
        }
    }

    /// [`Comm::gather`] with an explicit byte count for this rank's
    /// contribution.
    pub fn gather_with_size<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
        bytes: u64,
    ) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        if self.my_rank == root {
            let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(value);
            for src in 0..self.size() {
                if src != root {
                    slots[src] = Some(self.coll_recv(src, tag));
                }
            }
            Some(slots.into_iter().map(|s| s.unwrap()).collect())
        } else {
            self.send_raw(root, tag, Box::new(value), bytes);
            None
        }
    }

    /// [`Comm::allgather`] with an explicit byte count for this rank's
    /// contribution. Contributions travel to rank 0 charged at their own
    /// size; the re-broadcast of the combined vector is charged at the sum
    /// of all contributions — so the matrix sees the true wire volume.
    pub fn allgather_with_size<T: Clone + Send + 'static>(&self, value: T, bytes: u64) -> Vec<T> {
        let gathered = self.gather_with_size(0, (value, bytes), bytes);
        let (values, total) = match gathered {
            Some(pairs) => {
                let total: u64 = pairs.iter().map(|&(_, b)| b).sum();
                (pairs.into_iter().map(|(v, _)| v).collect(), total)
            }
            None => (Vec::new(), 0),
        };
        self.bcast_with_size(0, values, total)
    }

    /// Scatter one element of `values` (significant at the root) to each
    /// rank.
    pub fn scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> T {
        let tag = self.next_coll_tag();
        if self.my_rank == root {
            let values = values.expect("root must supply scatter values");
            assert_eq!(values.len(), self.size(), "scatter needs one value per rank");
            let mut mine = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    mine = Some(v);
                } else {
                    self.coll_send(dst, tag, v);
                }
            }
            mine.unwrap()
        } else {
            self.coll_recv(root, tag)
        }
    }

    /// Reduce with a binary operator to `root` (rank order fold).
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        let gathered = self.gather(root, value)?;
        let mut it = gathered.into_iter();
        let first = it.next().expect("communicator has at least one rank");
        Some(it.fold(first, op))
    }

    /// Reduce to every rank.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        let tag = self.next_coll_tag();
        if self.my_rank == 0 {
            let v = reduced.expect("rank 0 is the reduce root");
            for dst in 1..self.size() {
                self.coll_send(dst, tag, v.clone());
            }
            v
        } else {
            self.coll_recv(0, tag)
        }
    }

    // ------------------------------------------------------------------
    // sub-communicators
    // ------------------------------------------------------------------

    fn derive_id(&self, salt: u64) -> u64 {
        // split-mix style hash of (parent id, split sequence, salt) —
        // identical on all ranks because all inputs are.
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        let mut h = self.id ^ 0x9e3779b97f4a7c15;
        for v in [seq, salt] {
            h ^= v.wrapping_mul(0xbf58476d1ce4e5b9);
            h = h.rotate_left(31).wrapping_mul(0x94d049bb133111eb);
        }
        h | 1 // never collide with the world id 0
    }

    /// MPI-style split: ranks sharing `color` form a new communicator,
    /// ordered by `(key, parent rank)`. Collective on the parent.
    pub fn split(&self, color: u64, key: i64) -> Comm {
        let triples = self.allgather((color, key, self.my_rank));
        let mut members: Vec<(i64, usize)> =
            triples.iter().filter(|(c, _, _)| *c == color).map(|&(_, k, r)| (k, r)).collect();
        members.sort();
        let ranks: Vec<usize> = members.iter().map(|&(_, r)| self.ranks[r]).collect();
        let my_rank = members
            .iter()
            .position(|&(_, r)| r == self.my_rank)
            .expect("calling rank missing from its own split group");
        let id = self.derive_id(color);
        Comm {
            shared: Arc::clone(&self.shared),
            mailbox: Rc::clone(&self.mailbox),
            id,
            ranks: Arc::new(ranks),
            my_rank,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }

    /// Build a sub-communicator from an explicit list of parent ranks.
    ///
    /// Collective on the parent: **every** parent rank must call it with
    /// the same list (this keeps communicator ids in lock-step without any
    /// message traffic). Members get `Some(comm)`, non-members `None`.
    pub fn group(&self, members: &[usize]) -> Option<Comm> {
        let mut salt = 0xcbf29ce484222325u64;
        for &r in members {
            salt = (salt ^ r as u64).wrapping_mul(0x100000001b3);
        }
        let id = self.derive_id(salt);
        let my_rank = members.iter().position(|&r| r == self.my_rank)?;
        let ranks: Vec<usize> = members.iter().map(|&r| self.ranks[r]).collect();
        Some(Comm {
            shared: Arc::clone(&self.shared),
            mailbox: Rc::clone(&self.mailbox),
            id,
            ranks: Arc::new(ranks),
            my_rank,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TagClass;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.allgather(42usize)
        });
        assert_eq!(out, vec![vec![42]]);
    }

    #[test]
    fn ring_send_recv() {
        let n = 6;
        let out = World::run(n, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 1, comm.rank());
            let got: usize = comm.recv(left, 1);
            got
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got, (rank + n - 1) % n);
        }
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                // send tag 2 first, then tag 1
                comm.send(1, 2, "second".to_string());
                comm.send(1, 1, "first".to_string());
                (String::new(), String::new())
            } else {
                // receive tag 1 first even though tag 2 arrived first
                let a: String = comm.recv(0, 1);
                let b: String = comm.recv(0, 2);
                (a, b)
            }
        });
        assert_eq!(out[1], ("first".to_string(), "second".to_string()));
    }

    #[test]
    fn recv_any_collects_all_sources() {
        let out = World::run(5, |comm| {
            if comm.rank() == 0 {
                let mut seen = vec![false; comm.size()];
                for _ in 1..comm.size() {
                    let (src, v): (usize, usize) = comm.recv_any(9);
                    assert_eq!(v, src * 10);
                    seen[src] = true;
                }
                seen.iter().skip(1).all(|&s| s)
            } else {
                comm.send(0, 9, comm.rank() * 10);
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn try_recv_nonblocking() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 5, 123u32);
                comm.barrier();
                true
            } else {
                // nothing sent yet
                assert!(comm.try_recv::<u32>(0, 5).is_none());
                comm.barrier();
                comm.barrier();
                // now it must be there
                comm.try_recv::<u32>(0, 5) == Some(123)
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = World::run(4, |comm| comm.bcast(2, if comm.rank() == 2 { 77 } else { 0 }));
        assert_eq!(out, vec![77; 4]);
    }

    #[test]
    fn gather_in_rank_order() {
        let out = World::run(4, |comm| comm.gather(1, comm.rank() * comm.rank()));
        assert_eq!(out[1], Some(vec![0, 1, 4, 9]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn allgather_everywhere() {
        let out = World::run(3, |comm| comm.allgather(comm.rank() as u64 + 100));
        for v in out {
            assert_eq!(v, vec![100, 101, 102]);
        }
    }

    #[test]
    fn scatter_distributes() {
        let out = World::run(3, |comm| {
            let vals = (comm.rank() == 0).then(|| vec![10, 20, 30]);
            comm.scatter(0, vals)
        });
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn reduce_and_allreduce() {
        let out = World::run(5, |comm| {
            let sum = comm.reduce(0, comm.rank() as u64, |a, b| a + b);
            let max = comm.allreduce(comm.rank() as u64, u64::max);
            (sum, max)
        });
        assert_eq!(out[0].0, Some(10));
        assert!(out[1..].iter().all(|(s, _)| s.is_none()));
        assert!(out.iter().all(|(_, m)| *m == 4));
    }

    #[test]
    fn split_into_even_odd() {
        let out = World::run(6, |comm| {
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as i64);
            // sum ranks within each parity group via the subcomm
            let total = sub.allreduce(comm.rank(), |a, b| a + b);
            (sub.rank(), sub.size(), total)
        });
        // evens: world 0,2,4 -> sub ranks 0,1,2; sum 6. odds: 1,3,5 sum 9.
        assert_eq!(out[0], (0, 3, 6));
        assert_eq!(out[2], (1, 3, 6));
        assert_eq!(out[4], (2, 3, 6));
        assert_eq!(out[1], (0, 3, 9));
        assert_eq!(out[5], (2, 3, 9));
    }

    #[test]
    fn split_key_reorders_ranks() {
        let out = World::run(4, |comm| {
            // reverse order via descending keys
            let sub = comm.split(0, -(comm.rank() as i64));
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn group_members_and_nonmembers() {
        let out = World::run(5, |comm| {
            let g = comm.group(&[1, 3, 4]);
            match g {
                Some(sub) => {
                    let members = sub.allgather(comm.rank());
                    Some((sub.rank(), members))
                }
                None => None,
            }
        });
        assert!(out[0].is_none() && out[2].is_none());
        assert_eq!(out[1], Some((0, vec![1, 3, 4])));
        assert_eq!(out[3], Some((1, vec![1, 3, 4])));
        assert_eq!(out[4], Some((2, vec![1, 3, 4])));
    }

    #[test]
    fn nested_groups_do_not_cross_talk() {
        let out = World::run(4, |comm| {
            let front = comm.group(&[0, 1]);
            let back = comm.group(&[2, 3]);
            // identical tags on both subcomms must not collide
            if let Some(sub) = front {
                if sub.rank() == 0 {
                    sub.send(1, 7, 111u32);
                    0
                } else {
                    sub.recv::<u32>(0, 7)
                }
            } else if let Some(sub) = back {
                if sub.rank() == 0 {
                    sub.send(1, 7, 222u32);
                    0
                } else {
                    sub.recv::<u32>(0, 7)
                }
            } else {
                unreachable!()
            }
        });
        assert_eq!(out, vec![0, 111, 0, 222]);
    }

    #[test]
    fn traffic_stats_counted() {
        let stats = TrafficStats::new();
        World::run_traced(2, Arc::clone(&stats), |comm| {
            if comm.rank() == 0 {
                comm.send_with_size(1, 3, vec![0u8; 1000], 1000);
            } else {
                let _: Vec<u8> = comm.recv(0, 3);
            }
        });
        assert_eq!(stats.bytes(), 1000);
        assert_eq!(stats.messages(), 1);
    }

    #[test]
    fn sized_collectives_charge_wire_bytes() {
        let stats = TrafficStats::with_matrix_default(3);
        World::run_traced(3, Arc::clone(&stats), |comm| {
            // each rank contributes 100*(rank+1) bytes
            let mine = vec![0u8; 100 * (comm.rank() + 1)];
            let bytes = mine.len() as u64;
            let all = comm.allgather_with_size(mine, bytes);
            assert_eq!(all.iter().map(|v| v.len()).sum::<usize>(), 600);
        });
        // ranks 1,2 ship 200+300 to rank 0; rank 0 rebroadcasts 600 twice
        assert_eq!(stats.bytes(), 200 + 300 + 600 * 2);
        let (_, coll_bytes) = stats.edge(0, 1, TagClass::Collective);
        assert_eq!(coll_bytes, 600);
        let totals = stats.class_totals();
        let coll = totals.iter().find(|(c, _, _)| *c == TagClass::Collective).unwrap();
        assert_eq!(coll.2, stats.bytes());
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn type_mismatch_panics() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 1.5f64);
            } else {
                let _: u32 = comm.recv(0, 1);
            }
        });
    }

    #[test]
    fn message_storm_all_to_all() {
        // stress: every rank sends many tagged messages to every rank in
        // scrambled order; matching must sort it out
        let n = 5;
        let out = World::run(n, |comm| {
            for round in 0..20u64 {
                for dst in 0..comm.size() {
                    comm.send(dst, 100 + round, (comm.rank(), round));
                }
            }
            // receive in reverse round order from each source
            let mut sum = 0u64;
            for src in (0..comm.size()).rev() {
                for round in (0..20u64).rev() {
                    let (s, r): (usize, u64) = comm.recv(src, 100 + round);
                    assert_eq!((s, r), (src, round));
                    sum += r;
                }
            }
            sum
        });
        assert!(out.iter().all(|&s| s == 5 * 190));
    }

    #[test]
    fn repeated_split_generations() {
        // sub-communicators of sub-communicators keep ids distinct
        let out = World::run(8, |comm| {
            let half = comm.split((comm.rank() / 4) as u64, comm.rank() as i64);
            let quarter = half.split((half.rank() / 2) as u64, half.rank() as i64);
            assert_eq!(quarter.size(), 2);
            // exchange within the deepest communicator
            let peer = 1 - quarter.rank();
            quarter.send(peer, 1, comm.rank());
            let got: usize = quarter.recv(peer, 1);
            // peers differ by exactly 1 world rank in this construction
            got.abs_diff(comm.rank())
        });
        assert!(out.iter().all(|&d| d == 1));
    }

    #[test]
    fn world_rank_mapping() {
        World::run(4, |comm| {
            let sub = comm.group(&[3, 1]).filter(|_| matches!(comm.rank(), 1 | 3));
            if let Some(sub) = sub {
                // group order defines rank order: [3, 1]
                assert_eq!(sub.world_rank(0), 3);
                assert_eq!(sub.world_rank(1), 1);
            }
        });
    }

    #[test]
    fn isend_completes_only_on_match() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                let h = comm.isend(1, 11, 42u32);
                // rank 1 cannot have matched tag 11 yet: it only calls
                // recv(0, 11) after the barrier below, and the barrier
                // cannot complete before we enter it.
                let premature = h.is_complete();
                comm.barrier();
                h.wait();
                !premature
            } else {
                comm.barrier();
                let v: u32 = comm.recv(0, 11);
                v == 42
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn isend_acked_when_parked_message_is_matched() {
        // the message arrives during rank 1's barrier (parked unmatched in
        // pending); the ack must fire when the later recv matches it from
        // the pending queue, not when it was parked
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                let h = comm.isend(1, 21, vec![1u8, 2, 3]);
                comm.barrier();
                h.wait();
                true
            } else {
                comm.barrier();
                let v: Vec<u8> = comm.recv(0, 21);
                v == vec![1, 2, 3]
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn try_recv_completes_isend() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                let h = comm.isend(1, 31, 7u64);
                comm.barrier();
                comm.barrier();
                h.is_complete()
            } else {
                comm.barrier();
                // spin until the nonblocking receive sees it
                let mut got = None;
                while got.is_none() {
                    got = comm.try_recv::<u64>(0, 31);
                }
                comm.barrier();
                got == Some(7)
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn wait_all_drains_out_of_order_receives() {
        let out = World::run(3, |comm| {
            if comm.rank() == 0 {
                let handles: Vec<SendHandle> = (0..8u64)
                    .flat_map(|i| [comm.isend(1, 100 + i, i), comm.isend(2, 100 + i, i * 10)])
                    .collect();
                wait_all(handles);
                true
            } else {
                let scale = if comm.rank() == 1 { 1 } else { 10 };
                // receive in reverse order; every handle must still ack
                (0..8u64).rev().all(|i| comm.recv::<u64>(0, 100 + i) == i * scale)
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn dropped_handle_is_fire_and_forget() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                drop(comm.isend(1, 41, 9u8));
                true
            } else {
                comm.recv::<u8>(0, 41) == 9
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn isend_traffic_counted_like_send() {
        let stats = TrafficStats::new();
        World::run_traced(2, Arc::clone(&stats), |comm| {
            if comm.rank() == 0 {
                comm.isend_with_size(1, 3, vec![0u8; 500], 500).wait();
            } else {
                let _: Vec<u8> = comm.recv(0, 3);
            }
        });
        assert_eq!(stats.bytes(), 500);
        assert_eq!(stats.messages(), 1);
    }

    #[test]
    fn recv_timeout_expires_then_matches() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 8, 5u32);
                true
            } else {
                // nothing sent yet: the deadline must expire
                assert_eq!(
                    comm.recv_timeout::<u32>(0, 8, Duration::from_millis(10)),
                    Err(RecvTimeout)
                );
                comm.barrier();
                comm.recv_timeout::<u32>(0, 8, Duration::from_secs(10)) == Ok(5)
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn try_recv_for_waits_for_late_arrival() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(20));
                comm.send(1, 8, 7u32);
                true
            } else {
                comm.try_recv_for::<u32>(0, 8, Duration::from_secs(10)) == Some(7)
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn timed_out_message_is_claimed_by_later_receive() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 8, 9u32);
                true
            } else {
                assert!(comm.try_recv_for::<u32>(0, 8, Duration::from_millis(5)).is_none());
                comm.barrier();
                // the message sent after our timeout must still match a
                // plain blocking receive
                comm.recv::<u32>(0, 8) == 9
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn recv_any_for_takes_parked_and_fresh() {
        let out = World::run(3, |comm| {
            if comm.rank() == 0 {
                let mut got = Vec::new();
                for _ in 1..comm.size() {
                    let (src, v) = comm.recv_any_for::<usize>(4, Duration::from_secs(10)).unwrap();
                    assert_eq!(v, src * 3);
                    got.push(src);
                }
                got.sort();
                assert!(comm.recv_any_for::<usize>(4, Duration::from_millis(5)).is_none());
                got == vec![1, 2]
            } else {
                comm.send(0, 4, comm.rank() * 3);
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn lossy_send_without_plan_is_reliable() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_lossy_with_size(1, 5, 3u32, 4);
                comm.isend_lossy_with_size(1, 6, 4u32, 4).wait();
                true
            } else {
                comm.recv::<u32>(0, 5) == 3 && comm.recv::<u32>(0, 6) == 4
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn lossy_send_drops_deterministically_and_ack_completes() {
        use crate::fault::{FaultKind, FaultSpec};
        let plan = FaultPlan::new(FaultSpec::parse("seed=1,send_drop=1").unwrap());
        let out = World::run_faulted(2, TrafficStats::new(), Some(Arc::clone(&plan)), |comm| {
            if comm.rank() == 0 {
                let h = comm.isend_lossy_with_size(1, 5, 1u32, 4);
                assert!(h.is_complete(), "dropped isend must complete immediately");
                h.wait(); // must not hang
                comm.send_lossy_with_size(1, 5, 2u32, 4); // also dropped
                comm.send(1, 6, 2u32); // reliable path unaffected
                true
            } else {
                assert!(comm.try_recv_for::<u32>(0, 5, Duration::from_millis(50)).is_none());
                comm.recv::<u32>(0, 6) == 2
            }
        });
        assert!(out.iter().all(|&b| b));
        let events = plan.events();
        assert!(events.iter().all(|e| e.kind == FaultKind::SendDrop));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn lossy_send_delay_still_delivers() {
        use crate::fault::FaultSpec;
        let plan = FaultPlan::new(FaultSpec::parse("seed=1,send_delay=1,delay_ms=5").unwrap());
        let out = World::run_faulted(2, TrafficStats::new(), Some(plan), |comm| {
            if comm.rank() == 0 {
                comm.send_lossy_with_size(1, 5, 9u32, 4);
                true
            } else {
                comm.recv::<u32>(0, 5) == 9
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn send_to_exited_rank_swallowed_under_fault_plan() {
        use crate::fault::FaultSpec;
        // rank 1 exits immediately (scripted death); rank 0's later sends
        // must not panic the world
        let plan = FaultPlan::new(FaultSpec::parse("seed=1,fail_rank=1@0").unwrap());
        let out = World::run_faulted(2, TrafficStats::new(), Some(plan), |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(50));
                comm.send(1, 9, 1u32);
                drop(comm.isend(1, 9, 2u32)); // fire-and-forget: no panic either way
                true
            } else {
                true // exit at once, dropping the mailbox
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn overlapping_collectives_and_p2p() {
        // p2p messages sent before a barrier must still match after it
        let out = World::run(3, |comm| {
            comm.send((comm.rank() + 1) % 3, 42, comm.rank());
            comm.barrier();
            let from = (comm.rank() + 2) % 3;
            let v: usize = comm.recv(from, 42);
            v
        });
        assert_eq!(out, vec![2, 0, 1]);
    }
}
