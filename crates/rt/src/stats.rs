//! Global traffic accounting for a rank world.
//!
//! The compositing experiments (paper §4.4) compare algorithms by the
//! number of messages and bytes exchanged, so the runtime counts both.
//! Byte counts are exact for the `send_bytes` path and estimated via
//! `std::mem::size_of` for typed sends (good enough for the relative
//! comparisons the paper makes).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Message/byte counters shared by all ranks of one [`crate::World`] run.
#[derive(Debug, Default)]
pub struct TrafficStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl TrafficStats {
    pub fn new() -> Arc<TrafficStats> {
        Arc::new(TrafficStats::default())
    }

    /// Record one message of `bytes` payload bytes.
    #[inline]
    pub fn record(&self, bytes: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Reset both counters (between experiment phases).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let s = TrafficStats::new();
        s.record(100);
        s.record(28);
        assert_eq!(s.messages(), 2);
        assert_eq!(s.bytes(), 128);
        s.reset();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let s = TrafficStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record(3);
                    }
                });
            }
        });
        assert_eq!(s.messages(), 8000);
        assert_eq!(s.bytes(), 24000);
    }
}
