//! Traffic accounting for a rank world.
//!
//! The compositing experiments (paper §4.4) compare algorithms by the
//! number of messages and bytes exchanged, and the observability layer
//! (`crate::obs`) wants to know *who* talks to *whom* with *what*. So the
//! runtime keeps, besides the two global counters, an optional
//! per-`(src, dst, tag-class)` **traffic matrix**: a flat array of atomics
//! sized at world creation, updated lock-free on every send.
//!
//! Byte counts are exact wherever the senders use
//! [`crate::Comm::send_with_size`] (all pipeline/compositing data paths
//! do) and estimated via `std::mem::size_of` for plain typed sends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Coarse classification of a message by its tag, for the traffic matrix.
/// The mapping from raw tags to classes is application-defined (see
/// [`TrafficStats::with_matrix`]); collective-internal traffic is always
/// classified by the runtime itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagClass {
    /// Block value distribution: input → rendering processors.
    BlockData,
    /// LIC surface textures: input → output processor.
    LicImage,
    /// Composited frames: rendering root → output processor.
    VolumeImage,
    /// Compositing spans/strips between rendering processors.
    Composite,
    /// Piece redistribution inside a collective read (MPI-IO layer).
    IoPieces,
    /// Runtime-internal collective traffic (barriers, bcast, gather…).
    Collective,
    /// Recovery control traffic: heartbeats and degraded-block reports.
    Recovery,
    /// Anything else.
    Other,
}

impl TagClass {
    pub const COUNT: usize = 8;
    pub const ALL: [TagClass; TagClass::COUNT] = [
        TagClass::BlockData,
        TagClass::LicImage,
        TagClass::VolumeImage,
        TagClass::Composite,
        TagClass::IoPieces,
        TagClass::Collective,
        TagClass::Recovery,
        TagClass::Other,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            TagClass::BlockData => 0,
            TagClass::LicImage => 1,
            TagClass::VolumeImage => 2,
            TagClass::Composite => 3,
            TagClass::IoPieces => 4,
            TagClass::Collective => 5,
            TagClass::Recovery => 6,
            TagClass::Other => 7,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            TagClass::BlockData => "block_data",
            TagClass::LicImage => "lic_image",
            TagClass::VolumeImage => "volume_image",
            TagClass::Composite => "composite",
            TagClass::IoPieces => "io_pieces",
            TagClass::Collective => "collective",
            TagClass::Recovery => "recovery",
            TagClass::Other => "other",
        }
    }
}

/// One nonzero traffic-matrix entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficEdge {
    /// Sending world rank.
    pub src: usize,
    /// Receiving world rank.
    pub dst: usize,
    pub class: TagClass,
    pub messages: u64,
    pub bytes: u64,
}

struct Matrix {
    ranks: usize,
    classify: fn(u64) -> TagClass,
    /// `[(src * ranks + dst) * COUNT + class] -> (messages, bytes)`,
    /// interleaved as two atomics per cell.
    cells: Vec<AtomicU64>,
}

impl Matrix {
    #[inline]
    fn cell(&self, src: usize, dst: usize, class: usize) -> usize {
        2 * (((src * self.ranks) + dst) * TagClass::COUNT + class)
    }
}

/// Message/byte counters shared by all ranks of one [`crate::World`] run.
#[derive(Default)]
pub struct TrafficStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    matrix: Option<Matrix>,
}

impl std::fmt::Debug for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficStats")
            .field("messages", &self.messages())
            .field("bytes", &self.bytes())
            .field("matrix_ranks", &self.matrix.as_ref().map(|m| m.ranks))
            .finish()
    }
}

/// Default tag classifier: only the runtime-internal collective bit is
/// known at this layer.
fn classify_default(tag: u64) -> TagClass {
    if tag & (1 << 63) != 0 {
        TagClass::Collective
    } else {
        TagClass::Other
    }
}

impl TrafficStats {
    /// Global counters only (no matrix) — zero setup cost.
    pub fn new() -> Arc<TrafficStats> {
        Arc::new(TrafficStats::default())
    }

    /// Counters plus a `ranks × ranks × TagClass::COUNT` traffic matrix.
    /// `classify` maps *user* tags to classes; the runtime overrides it
    /// for its own collective traffic.
    pub fn with_matrix(ranks: usize, classify: fn(u64) -> TagClass) -> Arc<TrafficStats> {
        let cells = (0..2 * ranks * ranks * TagClass::COUNT).map(|_| AtomicU64::new(0)).collect();
        Arc::new(TrafficStats {
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            matrix: Some(Matrix { ranks, classify, cells }),
        })
    }

    /// Like [`TrafficStats::with_matrix`] with the default classifier
    /// (collective vs everything else).
    pub fn with_matrix_default(ranks: usize) -> Arc<TrafficStats> {
        TrafficStats::with_matrix(ranks, classify_default)
    }

    /// Record one message of `bytes` payload bytes (no matrix update).
    #[inline]
    pub fn record(&self, bytes: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one message on the `(src, dst)` edge with its tag. Updates
    /// the global counters and, when present, the traffic matrix. Called
    /// by the runtime on every send; lock-free.
    #[inline]
    pub fn record_edge(&self, src: usize, dst: usize, tag: u64, bytes: u64) {
        self.record(bytes);
        if let Some(m) = &self.matrix {
            if src < m.ranks && dst < m.ranks {
                let class =
                    if tag & (1 << 63) != 0 { TagClass::Collective } else { (m.classify)(tag) };
                let cell = m.cell(src, dst, class.index());
                m.cells[cell].fetch_add(1, Ordering::Relaxed);
                m.cells[cell + 1].fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Total messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Whether a traffic matrix is attached.
    pub fn has_matrix(&self) -> bool {
        self.matrix.is_some()
    }

    /// One matrix entry; `(0, 0)` when no matrix is attached.
    pub fn edge(&self, src: usize, dst: usize, class: TagClass) -> (u64, u64) {
        match &self.matrix {
            Some(m) if src < m.ranks && dst < m.ranks => {
                let cell = m.cell(src, dst, class.index());
                (m.cells[cell].load(Ordering::Relaxed), m.cells[cell + 1].load(Ordering::Relaxed))
            }
            _ => (0, 0),
        }
    }

    /// All nonzero matrix entries, ordered by `(src, dst, class)`.
    pub fn edges(&self) -> Vec<TrafficEdge> {
        let Some(m) = &self.matrix else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for src in 0..m.ranks {
            for dst in 0..m.ranks {
                for class in TagClass::ALL {
                    let cell = m.cell(src, dst, class.index());
                    let messages = m.cells[cell].load(Ordering::Relaxed);
                    let bytes = m.cells[cell + 1].load(Ordering::Relaxed);
                    if messages > 0 {
                        out.push(TrafficEdge { src, dst, class, messages, bytes });
                    }
                }
            }
        }
        out
    }

    /// Totals per class (messages, bytes), zero rows included.
    pub fn class_totals(&self) -> Vec<(TagClass, u64, u64)> {
        let mut totals = [(0u64, 0u64); TagClass::COUNT];
        for e in self.edges() {
            totals[e.class.index()].0 += e.messages;
            totals[e.class.index()].1 += e.bytes;
        }
        TagClass::ALL.iter().map(|&c| (c, totals[c.index()].0, totals[c.index()].1)).collect()
    }

    /// Reset every counter (between experiment phases).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        if let Some(m) = &self.matrix {
            for c in &m.cells {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let s = TrafficStats::new();
        s.record(100);
        s.record(28);
        assert_eq!(s.messages(), 2);
        assert_eq!(s.bytes(), 128);
        s.reset();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let s = TrafficStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record(3);
                    }
                });
            }
        });
        assert_eq!(s.messages(), 8000);
        assert_eq!(s.bytes(), 24000);
    }

    #[test]
    fn matrix_tracks_edges_exactly() {
        fn classify(tag: u64) -> TagClass {
            if tag == 7 {
                TagClass::BlockData
            } else {
                TagClass::Other
            }
        }
        let s = TrafficStats::with_matrix(3, classify);
        s.record_edge(0, 1, 7, 100);
        s.record_edge(0, 1, 7, 50);
        s.record_edge(0, 2, 9, 10);
        s.record_edge(2, 0, 1 << 63, 4);
        assert_eq!(s.edge(0, 1, TagClass::BlockData), (2, 150));
        assert_eq!(s.edge(0, 2, TagClass::Other), (1, 10));
        assert_eq!(s.edge(2, 0, TagClass::Collective), (1, 4));
        assert_eq!(s.edge(1, 0, TagClass::BlockData), (0, 0));
        assert_eq!(s.messages(), 4);
        assert_eq!(s.bytes(), 164);
        let edges = s.edges();
        assert_eq!(edges.len(), 3);
        assert_eq!(
            edges[0],
            TrafficEdge { src: 0, dst: 1, class: TagClass::BlockData, messages: 2, bytes: 150 }
        );
    }

    #[test]
    fn matrix_concurrent_edges_lock_free() {
        let s = TrafficStats::with_matrix_default(8);
        std::thread::scope(|scope| {
            for src in 0..8usize {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        s.record_edge(src, (src + 1) % 8, i % 3, 2);
                    }
                });
            }
        });
        for src in 0..8 {
            assert_eq!(s.edge(src, (src + 1) % 8, TagClass::Other), (1000, 2000));
        }
        assert_eq!(s.messages(), 8000);
    }

    #[test]
    fn class_totals_sum_matrix() {
        let s = TrafficStats::with_matrix_default(2);
        s.record_edge(0, 1, 5, 10);
        s.record_edge(1, 0, 5, 20);
        let totals = s.class_totals();
        let other = totals.iter().find(|(c, _, _)| *c == TagClass::Other).unwrap();
        assert_eq!((other.1, other.2), (2, 30));
    }
}
