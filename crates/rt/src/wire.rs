//! Pluggable wire codecs for payload-bearing sends.
//!
//! The traffic matrix (PR 1) shows `BlockData` dominating bytes moved, and
//! the paper's 2DIP shape exists precisely because block distribution (`Ts`)
//! is the bandwidth-bound term of §5. This module supplies the byte-level
//! compression layer the pipeline applies at its send sites:
//!
//! * [`Codec::Raw`] — identity; the wire body *is* the raw payload.
//! * [`Codec::Rle`] — classic `(count, byte)` run-length pairs; wins on
//!   quantized fields where the quiet basin is long runs of equal bytes.
//! * [`Codec::Shuffle`] — byte-plane shuffle (transpose by element stride)
//!   followed by zero-run tokens. Splitting f32 values into per-byte planes
//!   groups the highly-repetitive exponent bytes together, and XOR temporal
//!   deltas of coherent fields shuffle into long zero runs.
//!
//! Every codec is *guaranteed never to expand*: `encode` compares the coded
//! body against the raw input and falls back to verbatim storage, so the
//! encoded body is always ≤ the raw length. The single `coded` flag that
//! records which branch was taken is the entire header — the documented
//! per-piece overhead bound is **1 byte** ([`HEADER_BOUND_BYTES`]).
//!
//! Codec selection is per [`TagClass`] via [`WireSpec`], built from
//! `PipelineBuilder` or the `QUAKEVIZ_CODEC` environment variable
//! (see [`WireSpec::parse`] for the grammar). [`WireLedger`] accumulates the
//! raw-vs-wire byte counts and encode/decode time per class that feed
//! `traffic.<class>.raw_bytes` / `.wire_bytes` metrics, `pipeline-report`,
//! and the `BENCH_wire.json` baseline area.
//!
//! Decoded bytes are bit-identical to the encoded input for every codec —
//! `tests/wire_codec.rs` proves it property-style over adversarial payloads.

use crate::stats::TagClass;
use std::sync::atomic::{AtomicU64, Ordering};

/// Documented per-piece header overhead: the `coded` flag (never more).
pub const HEADER_BOUND_BYTES: usize = 1;

/// A byte-stream compressor for one wire payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// Identity: wire body == raw body.
    #[default]
    Raw,
    /// `(count u8 in 1..=255, byte)` pairs.
    Rle,
    /// Byte-plane shuffle by element stride, then zero-run tokens:
    /// token `0x00..=0x7F` copies `token+1` literal bytes, token
    /// `0x80..=0xFF` emits `token-0x7F` (1..=128) zero bytes.
    Shuffle,
}

/// Result of [`Codec::encode`]: the wire body plus whether it is coded
/// (vs stored raw verbatim after the no-expansion fallback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    pub coded: bool,
    pub body: Vec<u8>,
}

/// A malformed wire body (truncated, overlong, or inconsistent with the
/// declared raw length). Decoders return this instead of panicking so the
/// fault path can count and degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode: {}", self.0)
    }
}

impl Codec {
    pub const ALL: [Codec; 3] = [Codec::Raw, Codec::Rle, Codec::Shuffle];

    pub fn as_str(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Rle => "rle",
            Codec::Shuffle => "shuffle",
        }
    }

    pub fn parse(s: &str) -> Option<Codec> {
        match s {
            "raw" => Some(Codec::Raw),
            "rle" => Some(Codec::Rle),
            "shuffle" => Some(Codec::Shuffle),
            _ => None,
        }
    }

    /// Encode `raw` (consumed: the Raw codec and the stored fallback return
    /// it unchanged without copying). `stride` is the element width in
    /// bytes (4 for f32 fields, 1 for quantized u8, 16 for RGBA pixels) and
    /// only affects [`Codec::Shuffle`]'s plane transpose.
    pub fn encode(self, raw: Vec<u8>, stride: usize) -> Encoded {
        let coded = match self {
            Codec::Raw => None,
            Codec::Rle => rle_encode(&raw),
            Codec::Shuffle => zero_run_encode(&shuffle(&raw, stride), raw.len()),
        };
        match coded {
            Some(body) if body.len() < raw.len() => Encoded { coded: true, body },
            _ => Encoded { coded: false, body: raw },
        }
    }

    /// Decode a wire body back to exactly `raw_len` raw bytes. Rejects any
    /// body that is malformed or does not reproduce the declared length.
    pub fn decode(
        self,
        coded: bool,
        body: &[u8],
        raw_len: usize,
        stride: usize,
    ) -> Result<Vec<u8>, WireError> {
        if !coded {
            if body.len() != raw_len {
                return Err(WireError("stored body length != raw length"));
            }
            return Ok(body.to_vec());
        }
        match self {
            Codec::Raw => Err(WireError("raw codec has no coded form")),
            Codec::Rle => rle_decode(body, raw_len),
            Codec::Shuffle => zero_run_decode(body, raw_len).map(|p| unshuffle(&p, stride)),
        }
    }
}

/// RLE pairs; bails out (returns `None`) as soon as the output would match
/// or exceed the raw length, since the caller falls back to stored-raw.
fn rle_encode(raw: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw.len() / 4 + 8);
    let mut i = 0;
    while i < raw.len() {
        if out.len() + 2 > raw.len() {
            return None;
        }
        let b = raw[i];
        let mut n = 1usize;
        while n < 255 && i + n < raw.len() && raw[i + n] == b {
            n += 1;
        }
        out.push(n as u8);
        out.push(b);
        i += n;
    }
    Some(out)
}

fn rle_decode(body: &[u8], raw_len: usize) -> Result<Vec<u8>, WireError> {
    if !body.len().is_multiple_of(2) {
        return Err(WireError("rle body has odd length"));
    }
    let mut out = Vec::with_capacity(raw_len);
    for pair in body.chunks_exact(2) {
        let n = pair[0] as usize;
        if n == 0 {
            return Err(WireError("rle run of zero length"));
        }
        if out.len() + n > raw_len {
            return Err(WireError("rle output exceeds raw length"));
        }
        out.resize(out.len() + n, pair[1]);
    }
    if out.len() != raw_len {
        return Err(WireError("rle output shorter than raw length"));
    }
    Ok(out)
}

/// Transpose into byte planes: plane b holds byte b of every complete
/// `stride`-wide element; the ragged tail (if any) is appended verbatim.
fn shuffle(raw: &[u8], stride: usize) -> Vec<u8> {
    let s = stride.max(1);
    let n = raw.len() / s;
    let mut out = Vec::with_capacity(raw.len());
    for b in 0..s {
        for i in 0..n {
            out.push(raw[i * s + b]);
        }
    }
    out.extend_from_slice(&raw[n * s..]);
    out
}

fn unshuffle(planes: &[u8], stride: usize) -> Vec<u8> {
    let s = stride.max(1);
    let n = planes.len() / s;
    let mut out = vec![0u8; planes.len()];
    for b in 0..s {
        for i in 0..n {
            out[i * s + b] = planes[b * n + i];
        }
    }
    out[n * s..].copy_from_slice(&planes[n * s..]);
    out
}

fn zero_run_encode(data: &[u8], budget: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(budget.min(data.len() / 2 + 8));
    let mut i = 0;
    while i < data.len() {
        if out.len() >= budget {
            return None;
        }
        if data[i] == 0 {
            let mut n = 1usize;
            while n < 128 && i + n < data.len() && data[i + n] == 0 {
                n += 1;
            }
            out.push(0x7F + n as u8);
            i += n;
        } else {
            let mut n = 1usize;
            while n < 128 && i + n < data.len() && data[i + n] != 0 {
                n += 1;
            }
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        }
    }
    Some(out)
}

fn zero_run_decode(body: &[u8], raw_len: usize) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while i < body.len() {
        let t = body[i];
        i += 1;
        if t >= 0x80 {
            let n = (t - 0x7F) as usize;
            if out.len() + n > raw_len {
                return Err(WireError("zero run exceeds raw length"));
            }
            out.resize(out.len() + n, 0);
        } else {
            let n = t as usize + 1;
            if i + n > body.len() {
                return Err(WireError("literal run truncated"));
            }
            if out.len() + n > raw_len {
                return Err(WireError("literal run exceeds raw length"));
            }
            out.extend_from_slice(&body[i..i + n]);
            i += n;
        }
    }
    if out.len() != raw_len {
        return Err(WireError("zero-run output shorter than raw length"));
    }
    Ok(out)
}

/// XOR `prev` into `cur` in place — both the temporal-delta transform and
/// its own inverse. Lengths must match (callers force a keyframe when the
/// previous payload has a different length).
pub fn xor_in_place(cur: &mut [u8], prev: &[u8]) {
    debug_assert_eq!(cur.len(), prev.len());
    for (c, p) in cur.iter_mut().zip(prev) {
        *c ^= *p;
    }
}

/// Wire configuration: a codec per [`TagClass`] plus the temporal-delta
/// switch for block data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpec {
    pub codecs: [Codec; TagClass::COUNT],
    /// Send per-block XOR deltas against the sender's previous step.
    pub delta: bool,
    /// Force a keyframe every K sender-owned steps (absolute step count,
    /// so the schedule is deterministic across resume). Ignored unless
    /// `delta` is on.
    pub keyframe_every: u32,
}

impl Default for WireSpec {
    fn default() -> WireSpec {
        WireSpec { codecs: [Codec::Raw; TagClass::COUNT], delta: false, keyframe_every: 8 }
    }
}

impl WireSpec {
    /// All payload classes on `codec`, deltas off.
    pub fn all(codec: Codec) -> WireSpec {
        WireSpec { codecs: [codec; TagClass::COUNT], ..WireSpec::default() }
    }

    /// The plain uncompressed wire format (the default).
    pub fn raw() -> WireSpec {
        WireSpec::default()
    }

    pub fn codec_for(&self, class: TagClass) -> Codec {
        self.codecs[class.index()]
    }

    /// Anything non-default configured?
    pub fn is_active(&self) -> bool {
        self.delta || self.codecs.iter().any(|&c| c != Codec::Raw)
    }

    /// Parse a spec string. Tokens are separated by `,` or `+`:
    ///
    /// * `raw` / `rle` / `shuffle` — codec for every payload class
    /// * `<class>=<codec>` — per-class override, e.g. `block_data=shuffle`
    /// * `delta` / `delta=on|off` — temporal block deltas
    /// * `keyframe=K` (alias `keyframe_every=K`) — keyframe period, K ≥ 1
    ///
    /// Examples: `rle`, `shuffle+delta`, `shuffle+delta+keyframe=4`,
    /// `block_data=shuffle,lic_image=rle,delta`.
    pub fn parse(s: &str) -> Result<WireSpec, String> {
        let mut spec = WireSpec::default();
        for tok in s.split([',', '+']).map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(codec) = Codec::parse(tok) {
                spec.codecs = [codec; TagClass::COUNT];
                continue;
            }
            match tok.split_once('=') {
                None if tok == "delta" => spec.delta = true,
                None => return Err(format!("unknown wire token {tok:?}")),
                Some(("delta", v)) => {
                    spec.delta = match v {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        _ => return Err(format!("delta: bad value {v:?}")),
                    }
                }
                Some(("keyframe" | "keyframe_every", v)) => {
                    let k: u32 = v.parse().map_err(|_| format!("keyframe: bad value {v:?}"))?;
                    if k == 0 {
                        return Err("keyframe: period must be >= 1".into());
                    }
                    spec.keyframe_every = k;
                }
                Some((class, codec)) => {
                    let c =
                        Codec::parse(codec).ok_or_else(|| format!("unknown codec {codec:?}"))?;
                    let idx = TagClass::ALL
                        .iter()
                        .position(|t| t.as_str() == class)
                        .ok_or_else(|| format!("unknown tag class {class:?}"))?;
                    spec.codecs[idx] = c;
                }
            }
        }
        Ok(spec)
    }

    /// Read `QUAKEVIZ_CODEC`; unset, empty, or `0` means "not configured".
    /// Panics on a malformed spec — the variable is operator input and a
    /// silently-ignored typo would quietly benchmark the wrong codec.
    pub fn from_env() -> Option<WireSpec> {
        let raw = std::env::var("QUAKEVIZ_CODEC").ok()?;
        let raw = raw.trim();
        if raw.is_empty() || raw == "0" {
            return None;
        }
        match WireSpec::parse(raw) {
            Ok(spec) => Some(spec),
            Err(e) => panic!("QUAKEVIZ_CODEC={raw:?}: {e}"),
        }
    }

    /// Short human description for reports ("block_data=shuffle delta k=4",
    /// or just the codec name when every class shares it).
    pub fn describe(&self) -> String {
        let uniform = self.codecs.iter().all(|c| *c == self.codecs[0]);
        let mut parts: Vec<String> = if uniform {
            if self.codecs[0] == Codec::Raw {
                Vec::new()
            } else {
                vec![self.codecs[0].as_str().to_string()]
            }
        } else {
            TagClass::ALL
                .iter()
                .filter(|c| self.codec_for(**c) != Codec::Raw)
                .map(|c| format!("{}={}", c.as_str(), self.codec_for(*c).as_str()))
                .collect()
        };
        if self.delta {
            parts.push(format!("delta k={}", self.keyframe_every));
        }
        if parts.is_empty() {
            "raw".into()
        } else {
            parts.join(" ")
        }
    }
}

const LEDGER_FIELDS: usize = 6;

/// Per-[`TagClass`] raw-vs-wire accounting, shared by every rank thread.
/// Sender sides record raw/wire byte counts and encode time plus the
/// keyframe/delta piece split; receiver sides record decode time.
#[derive(Default)]
pub struct WireLedger {
    cells: [[AtomicU64; LEDGER_FIELDS]; TagClass::COUNT],
}

/// One class's totals from [`WireLedger::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireClassStats {
    pub class: TagClass,
    pub raw_bytes: u64,
    pub wire_bytes: u64,
    pub encode_ns: u64,
    pub decode_ns: u64,
    pub keyframe_pieces: u64,
    pub delta_pieces: u64,
}

impl WireClassStats {
    /// Compression ratio raw/wire (≥ 1.0 by the no-expansion guarantee).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.wire_bytes.max(1) as f64
    }
}

impl WireLedger {
    pub fn new() -> WireLedger {
        WireLedger::default()
    }

    pub fn record_send(&self, class: TagClass, raw_bytes: u64, wire_bytes: u64, encode_ns: u64) {
        let cell = &self.cells[class.index()];
        cell[0].fetch_add(raw_bytes, Ordering::Relaxed);
        cell[1].fetch_add(wire_bytes, Ordering::Relaxed);
        cell[2].fetch_add(encode_ns, Ordering::Relaxed);
    }

    pub fn record_decode(&self, class: TagClass, decode_ns: u64) {
        self.cells[class.index()][3].fetch_add(decode_ns, Ordering::Relaxed);
    }

    pub fn record_pieces(&self, class: TagClass, keyframes: u64, deltas: u64) {
        let cell = &self.cells[class.index()];
        cell[4].fetch_add(keyframes, Ordering::Relaxed);
        cell[5].fetch_add(deltas, Ordering::Relaxed);
    }

    /// Totals for every class that saw traffic, in [`TagClass::ALL`] order.
    pub fn snapshot(&self) -> Vec<WireClassStats> {
        TagClass::ALL
            .iter()
            .map(|&class| {
                let cell = &self.cells[class.index()];
                WireClassStats {
                    class,
                    raw_bytes: cell[0].load(Ordering::Relaxed),
                    wire_bytes: cell[1].load(Ordering::Relaxed),
                    encode_ns: cell[2].load(Ordering::Relaxed),
                    decode_ns: cell[3].load(Ordering::Relaxed),
                    keyframe_pieces: cell[4].load(Ordering::Relaxed),
                    delta_pieces: cell[5].load(Ordering::Relaxed),
                }
            })
            .filter(|s| s.raw_bytes > 0 || s.wire_bytes > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: Codec, raw: &[u8], stride: usize) {
        let e = codec.encode(raw.to_vec(), stride);
        assert!(e.body.len() <= raw.len(), "{codec:?} expanded {} -> {}", raw.len(), e.body.len());
        let back = codec.decode(e.coded, &e.body, raw.len(), stride).expect("decode");
        assert_eq!(back, raw, "{codec:?} round-trip mismatch");
    }

    #[test]
    fn codecs_roundtrip_basic_shapes() {
        let zeros = vec![0u8; 300];
        let ramp: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let sparse: Vec<u8> = (0..300u32).map(|i| if i % 37 == 0 { 0xAB } else { 0 }).collect();
        for codec in Codec::ALL {
            for stride in [1usize, 4, 16] {
                roundtrip(codec, &[], stride);
                roundtrip(codec, &[7], stride);
                roundtrip(codec, &zeros, stride);
                roundtrip(codec, &ramp, stride);
                roundtrip(codec, &sparse, stride);
            }
        }
    }

    #[test]
    fn compressible_payloads_shrink() {
        let zeros = vec![0u8; 4096];
        for codec in [Codec::Rle, Codec::Shuffle] {
            let e = codec.encode(zeros.clone(), 4);
            assert!(e.coded && e.body.len() < zeros.len() / 8, "{codec:?}: {}", e.body.len());
        }
    }

    #[test]
    fn malformed_bodies_are_rejected_not_panicked() {
        assert!(Codec::Rle.decode(true, &[0, 5], 5, 1).is_err());
        assert!(Codec::Rle.decode(true, &[3], 3, 1).is_err());
        assert!(Codec::Rle.decode(true, &[200, 1], 10, 1).is_err());
        assert!(Codec::Shuffle.decode(true, &[5, 1, 2], 6, 1).is_err());
        assert!(Codec::Shuffle.decode(true, &[0xFF], 4, 1).is_err());
        assert!(Codec::Raw.decode(false, &[1, 2], 3, 1).is_err());
    }

    #[test]
    fn spec_parse_grammar() {
        let s = WireSpec::parse("shuffle+delta+keyframe=4").unwrap();
        assert_eq!(s.codec_for(TagClass::BlockData), Codec::Shuffle);
        assert!(s.delta);
        assert_eq!(s.keyframe_every, 4);

        let s = WireSpec::parse("block_data=rle,lic_image=shuffle").unwrap();
        assert_eq!(s.codec_for(TagClass::BlockData), Codec::Rle);
        assert_eq!(s.codec_for(TagClass::LicImage), Codec::Shuffle);
        assert_eq!(s.codec_for(TagClass::VolumeImage), Codec::Raw);
        assert!(!s.delta);

        assert!(WireSpec::parse("").unwrap() == WireSpec::default());
        assert!(WireSpec::parse("zstd").is_err());
        assert!(WireSpec::parse("block_data=lz4").is_err());
        assert!(WireSpec::parse("keyframe=0").is_err());
        assert!(WireSpec::parse("delta=maybe").is_err());
    }

    #[test]
    fn ledger_accumulates_per_class() {
        let ledger = WireLedger::new();
        ledger.record_send(TagClass::BlockData, 100, 40, 7);
        ledger.record_send(TagClass::BlockData, 100, 60, 3);
        ledger.record_decode(TagClass::BlockData, 5);
        ledger.record_pieces(TagClass::BlockData, 2, 6);
        let snap = ledger.snapshot();
        assert_eq!(snap.len(), 1);
        let s = snap[0];
        assert_eq!(s.class, TagClass::BlockData);
        assert_eq!((s.raw_bytes, s.wire_bytes), (200, 100));
        assert_eq!((s.encode_ns, s.decode_ns), (10, 5));
        assert_eq!((s.keyframe_pieces, s.delta_pieces), (2, 6));
        assert!((s.ratio() - 2.0).abs() < 1e-12);
    }
}
