//! Deterministic fault injection for the pipeline's robustness layer.
//!
//! A terascale run will see slow stripes, transient read errors, corrupted
//! payloads and stalled ranks; the pipeline must degrade instead of crash.
//! To *test* that machinery reproducibly, faults are injected from a
//! seeded, replayable [`FaultPlan`]: every decision is a pure function of
//! `(seed, site, attempt)` hashed through [`SplitMix64`], never of wall
//! clock or thread interleaving — two runs with the same spec inject the
//! same faults at the same sites and therefore produce the same frames.
//!
//! The spec is a compact `key=value` string, settable via the
//! `QUAKEVIZ_FAULTS` environment variable so the whole test suite can run
//! under a fault matrix:
//!
//! ```text
//! seed=42,read_transient=0.05,read_corrupt=0.02,read_slow=0.05,slow_factor=4,
//! send_drop=0.02,send_delay=0.05,delay_ms=10,wire_corrupt=0.01,fail_rank=1@2
//! ```
//!
//! Rank death need not be permanent: `recover_rank=R@S` is the dual of
//! `fail_rank` — the dead rank rejoins the run at step `S`. Repeated
//! `fail_rank`/`recover_rank` clauses for one rank form a *membership
//! timeline* (alternating fail/recover at strictly increasing steps), and
//! a `recover_rank` with no preceding `fail_rank` scripts a spare-pool
//! join: a rank that never held state announces itself at `S`.
//!
//! Injection happens at two layers: the virtual parallel file system
//! (`quakeviz-parfs`) consults [`FaultPlan::read_fault`] per read attempt,
//! and the communication runtime ([`crate::Comm`]) consults
//! [`FaultPlan::send_fault`] on lossy sends. The plan also keeps the
//! injected-fault log and the recovery counters (retries, backoff time,
//! degraded blocks, failover events) that `pipeline-report` surfaces.

use crate::rng::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Parsed fault-injection specification. All probabilities are per-event
/// (per read attempt, per lossy send) in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Seed of every injection decision.
    pub seed: u64,
    /// Probability a read attempt fails with a transient I/O error.
    pub read_transient: f64,
    /// Probability a read attempt returns a corrupted stripe (detected by
    /// the file system's stripe checksum, surfaced as a retryable error).
    pub read_corrupt: f64,
    /// Probability a read is slowed by `slow_factor`.
    pub read_slow: f64,
    /// Simulated-time multiplier for slow reads (≥ 1).
    pub slow_factor: f64,
    /// Probability a lossy send is dropped on the wire.
    pub send_drop: f64,
    /// Probability a lossy send is delayed by `delay_ms`.
    pub send_delay: f64,
    /// Fixed sender-side delay for delayed sends, milliseconds.
    pub delay_ms: u64,
    /// Probability a lossy send's payload is corrupted in flight (one bit
    /// flip, caught by the receiver's per-piece checksum).
    pub wire_corrupt: f64,
    /// `(rank, step)`: world `rank` fails at `step` — it stops
    /// participating and its group reassigns its work to survivors. This
    /// is the *first* scripted kill; the full fail/recover history lives
    /// in [`FaultSpec::rank_timeline`]. Without a matching `recover_rank`
    /// the death is permanent.
    pub fail_rank: Option<(usize, usize)>,
    /// The scripted membership timeline of the run's single fail/recover
    /// target rank, sorted by step: alternating [`MembershipEvent::Fail`]
    /// / [`MembershipEvent::Recover`] entries at strictly increasing
    /// steps. Empty when no membership fault is scripted (a bare
    /// `fail_rank` set directly on the struct still works — queries fall
    /// back to it).
    pub rank_timeline: Vec<MembershipEvent>,
    /// Step at which the elastic controller (hosted on the output rank)
    /// permanently stops issuing rebalance plans. The schedule is shared
    /// state, so every rank mirrors the kill deterministically: control
    /// ticks at or after this step happen nowhere, and the pipeline keeps
    /// running on its last committed epoch with unchanged cadence.
    pub fail_controller: Option<usize>,
    /// `(rank, factor)`: world `rank` renders `factor`× slower (factor
    /// ≥ 1) — the deterministic load-skew knob the elastic controller is
    /// tested against. Only the render phase is inflated, so the skew is
    /// visible exactly where the controller measures.
    pub slow_rank: Option<(usize, f64)>,
    /// Step at which every input rank's prefetch worker thread dies
    /// (scripted). The consumer detects the closed hand-off channel and
    /// serves the remaining steps synchronously, counted per step as
    /// `recovery.prefetch_fallbacks`; a no-op on the synchronous runtime.
    pub fail_prefetch: Option<usize>,
}

/// Parse a `rank@step` value for `key`.
fn rank_at_step(key: &str, value: &str) -> Result<(usize, usize), String> {
    let (r, t) = value
        .split_once('@')
        .ok_or_else(|| format!("fault spec {key}: want rank@step, got {value:?}"))?;
    let rank = r.parse().map_err(|_| format!("fault spec {key}: bad rank {r:?}"))?;
    let step = t.parse().map_err(|_| format!("fault spec {key}: bad step {t:?}"))?;
    Ok((rank, step))
}

/// One scripted membership event: the target rank leaves or rejoins the
/// run at a step boundary. Parsed from `fail_rank=R@S` / `recover_rank=R@S`
/// clauses; see [`FaultSpec::rank_timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// Rank `rank` goes silent from step `step` on.
    Fail { rank: usize, step: usize },
    /// Rank `rank` rejoins at step `step` (a spare-pool join when no
    /// `Fail` precedes it).
    Recover { rank: usize, step: usize },
}

impl MembershipEvent {
    pub fn rank(self) -> usize {
        match self {
            MembershipEvent::Fail { rank, .. } | MembershipEvent::Recover { rank, .. } => rank,
        }
    }

    pub fn step(self) -> usize {
        match self {
            MembershipEvent::Fail { step, .. } | MembershipEvent::Recover { step, .. } => step,
        }
    }
}

impl FaultSpec {
    /// Parse a `key=value,key=value` spec string. An empty string is the
    /// all-zero (fault-free) spec.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec { slow_factor: 1.0, ..FaultSpec::default() };
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item {part:?} is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 =
                    v.parse().map_err(|_| format!("fault spec {key}: bad number {v:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault spec {key}: probability {p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    spec.seed =
                        value.parse().map_err(|_| format!("fault spec seed: bad u64 {value:?}"))?
                }
                "read_transient" => spec.read_transient = prob(value)?,
                "read_corrupt" => spec.read_corrupt = prob(value)?,
                "read_slow" => spec.read_slow = prob(value)?,
                "slow_factor" => {
                    let f: f64 = value
                        .parse()
                        .map_err(|_| format!("fault spec slow_factor: bad number {value:?}"))?;
                    if f < 1.0 {
                        return Err(format!("fault spec slow_factor: {f} must be ≥ 1"));
                    }
                    spec.slow_factor = f;
                }
                "send_drop" => spec.send_drop = prob(value)?,
                "send_delay" => spec.send_delay = prob(value)?,
                "delay_ms" => {
                    spec.delay_ms = value
                        .parse()
                        .map_err(|_| format!("fault spec delay_ms: bad u64 {value:?}"))?
                }
                "wire_corrupt" => spec.wire_corrupt = prob(value)?,
                "fail_rank" => {
                    let (rank, step) = rank_at_step("fail_rank", value)?;
                    spec.rank_timeline.push(MembershipEvent::Fail { rank, step });
                }
                "recover_rank" => {
                    let (rank, step) = rank_at_step("recover_rank", value)?;
                    spec.rank_timeline.push(MembershipEvent::Recover { rank, step });
                }
                "fail_controller" => {
                    let step = value
                        .parse()
                        .map_err(|_| format!("fault spec fail_controller: bad step {value:?}"))?;
                    spec.fail_controller = Some(step);
                }
                "slow_rank" => {
                    let (r, f) = value.split_once('@').ok_or_else(|| {
                        format!("fault spec slow_rank: want rank@factor, got {value:?}")
                    })?;
                    let rank =
                        r.parse().map_err(|_| format!("fault spec slow_rank: bad rank {r:?}"))?;
                    let factor: f64 =
                        f.parse().map_err(|_| format!("fault spec slow_rank: bad factor {f:?}"))?;
                    if factor < 1.0 {
                        return Err(format!("fault spec slow_rank: factor {factor} must be ≥ 1"));
                    }
                    spec.slow_rank = Some((rank, factor));
                }
                "fail_prefetch" => {
                    let step = value
                        .parse()
                        .map_err(|_| format!("fault spec fail_prefetch: bad step {value:?}"))?;
                    spec.fail_prefetch = Some(step);
                }
                _ => return Err(format!("fault spec: unknown key {key:?}")),
            }
        }
        spec.finish_timeline()?;
        Ok(spec)
    }

    /// Sort and validate the membership timeline: one target rank,
    /// strictly increasing steps, alternating fail/recover (a leading
    /// recover is a spare-pool join). Mirrors the first kill into the
    /// compatibility field [`FaultSpec::fail_rank`].
    fn finish_timeline(&mut self) -> Result<(), String> {
        if self.rank_timeline.is_empty() {
            return Ok(());
        }
        self.rank_timeline.sort_by_key(|e| e.step());
        let target = self.rank_timeline[0].rank();
        let mut dead = false;
        let mut prev: Option<usize> = None;
        for (i, ev) in self.rank_timeline.iter().enumerate() {
            if ev.rank() != target {
                return Err(format!(
                    "fault spec: fail_rank/recover_rank timeline supports a single target \
                     rank (got ranks {target} and {})",
                    ev.rank()
                ));
            }
            if prev.is_some_and(|p| ev.step() <= p) {
                return Err(format!(
                    "fault spec: membership events of rank {target} must have strictly \
                     increasing steps (step {} repeats or regresses)",
                    ev.step()
                ));
            }
            prev = Some(ev.step());
            match ev {
                MembershipEvent::Fail { step, .. } => {
                    if dead {
                        return Err(format!(
                            "fault spec: fail_rank={target}@{step} but the rank is already \
                             dead — insert a recover_rank first"
                        ));
                    }
                    dead = true;
                }
                MembershipEvent::Recover { step, .. } => {
                    if !dead && i > 0 {
                        return Err(format!(
                            "fault spec: recover_rank={target}@{step} but the rank is \
                             already alive"
                        ));
                    }
                    dead = false;
                }
            }
        }
        self.fail_rank = self.rank_timeline.iter().find_map(|e| match *e {
            MembershipEvent::Fail { rank, step } => Some((rank, step)),
            MembershipEvent::Recover { .. } => None,
        });
        Ok(())
    }

    /// The effective membership timeline: the explicit one, or the bare
    /// compatibility `fail_rank` as a single permanent kill.
    pub fn membership(&self) -> Vec<MembershipEvent> {
        if !self.rank_timeline.is_empty() {
            return self.rank_timeline.clone();
        }
        self.fail_rank
            .map(|(rank, step)| MembershipEvent::Fail { rank, step })
            .into_iter()
            .collect()
    }

    /// The spec from `QUAKEVIZ_FAULTS`; `None` when unset, empty or `0`.
    pub fn from_env() -> Option<FaultSpec> {
        let v = std::env::var("QUAKEVIZ_FAULTS").ok()?;
        if v.is_empty() || v == "0" {
            return None;
        }
        match FaultSpec::parse(&v) {
            Ok(spec) => Some(spec),
            Err(e) => panic!("QUAKEVIZ_FAULTS: {e}"),
        }
    }
}

/// Kinds of injected faults, for the log and the per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    ReadTransient,
    ReadCorrupt,
    ReadSlow,
    SendDrop,
    SendDelay,
    WireCorrupt,
    RankFail,
}

impl FaultKind {
    pub const COUNT: usize = 7;
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::ReadTransient,
        FaultKind::ReadCorrupt,
        FaultKind::ReadSlow,
        FaultKind::SendDrop,
        FaultKind::SendDelay,
        FaultKind::WireCorrupt,
        FaultKind::RankFail,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultKind::ReadTransient => 0,
            FaultKind::ReadCorrupt => 1,
            FaultKind::ReadSlow => 2,
            FaultKind::SendDrop => 3,
            FaultKind::SendDelay => 4,
            FaultKind::WireCorrupt => 5,
            FaultKind::RankFail => 6,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::ReadTransient => "read_transient",
            FaultKind::ReadCorrupt => "read_corrupt",
            FaultKind::ReadSlow => "read_slow",
            FaultKind::SendDrop => "send_drop",
            FaultKind::SendDelay => "send_delay",
            FaultKind::WireCorrupt => "wire_corrupt",
            FaultKind::RankFail => "rank_fail",
        }
    }
}

/// One injected fault, as recorded in the replayable log. Log *order*
/// depends on thread interleaving; the set does not — compare sorted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    pub kind: FaultKind,
    /// Human-readable site, e.g. `read steps/0003.bin@0+12000` or
    /// `send 0->3 tag 35184372088835`.
    pub site: String,
    /// Read attempt number the fault hit (0 for send faults).
    pub attempt: u32,
}

/// Outcome of a read-fault roll for one attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadFault {
    /// The attempt fails with a transient I/O error (retryable).
    Transient,
    /// The attempt returns a corrupted stripe; the file system's stripe
    /// checksum catches it and the read fails (retryable).
    Corrupt,
    /// The attempt succeeds but simulated disk time is multiplied.
    Slow { factor: f64 },
}

/// Outcome of a send-fault roll for one lossy send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// The message never arrives (the local send still completes, as a
    /// network-dropped MPI send would).
    Drop,
    /// The message is held back for the given duration before delivery.
    Delay(Duration),
}

/// Recovery-action counters accumulated during a faulted run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Read attempts retried after a transient/corrupt fault.
    pub read_retries: u64,
    /// Total backoff sleep, microseconds.
    pub backoff_us: u64,
    /// Reads that exhausted their retry budget.
    pub exhausted_reads: u64,
    /// Wire checksum mismatches detected on receive.
    pub checksum_failures: u64,
    /// Pieces whose checksum verified but whose contents were unusable
    /// (undecodable codec body, or a temporal-delta base the receiver no
    /// longer holds after an upstream fault); dropped and degraded over.
    pub wire_rejects: u64,
    /// Blocks rendered degraded (coarser level / stale data), summed over
    /// frames.
    pub degraded_blocks: u64,
    /// Frames flagged degraded.
    pub degraded_frames: u64,
    /// Group members declared dead and failed over.
    pub failover_events: u64,
    /// Render ranks declared dead by a surviving render peer (one count
    /// per surviving detector, like [`RecoveryStats::failover_events`]).
    pub render_failovers: u64,
    /// Output-rank deaths detected by the supervising render rank.
    pub output_failovers: u64,
    /// Frames assembled by the failover supervisor after the output rank
    /// died (shipped flagged, never silently skipped).
    pub migrated_frames: u64,
    /// Steps an input rank served synchronously after its prefetch worker
    /// thread died (the overlapped runtime degraded, never aborted).
    pub prefetch_fallbacks: u64,
    /// Scripted elastic-controller kills observed (at most 1): the
    /// pipeline froze on its last committed epoch from that step on.
    pub controller_kills: u64,
    /// Ranks folded back into the run over the `TAG_JOIN` handshake
    /// (recovered dead ranks and spare-pool joins alike), one count per
    /// completed join announcement.
    pub rejoins: u64,
    /// Committed control plans a joiner replayed from the controller's
    /// history to catch up on epochs it slept through.
    pub catchup_plans: u64,
    /// Checkpointed field snapshots a joiner restored from parfs on
    /// rejoin (warm-start; at most one per rejoin).
    pub catchup_fields: u64,
}

// distinct salts per decision kind so e.g. transient and corrupt rolls at
// the same site are independent
const SALT_TRANSIENT: u64 = 0x7261_6e73_6965_6e74;
const SALT_CORRUPT: u64 = 0x636f_7272_7570_7431;
const SALT_SLOW: u64 = 0x736c_6f77_7265_6164;
const SALT_DROP: u64 = 0x6472_6f70_7365_6e64;
const SALT_DELAY: u64 = 0x6465_6c61_7973_6e64;
const SALT_WIRE: u64 = 0x7769_7265_666c_6970;
const SALT_BIT: u64 = 0x6269_7470_6963_6b31;

/// A live fault schedule: stateless seeded decisions plus the shared
/// injected-fault log and recovery counters. One plan is shared by all
/// ranks of a pipeline run.
pub struct FaultPlan {
    spec: FaultSpec,
    /// Normalized membership timeline (see [`FaultSpec::membership`]),
    /// computed once so per-step queries never allocate.
    timeline: Vec<MembershipEvent>,
    events: Mutex<Vec<FaultEvent>>,
    counts: [AtomicU64; FaultKind::COUNT],
    read_retries: AtomicU64,
    backoff_us: AtomicU64,
    exhausted_reads: AtomicU64,
    checksum_failures: AtomicU64,
    wire_rejects: AtomicU64,
    degraded_blocks: AtomicU64,
    degraded_frames: AtomicU64,
    failover_events: AtomicU64,
    render_failovers: AtomicU64,
    output_failovers: AtomicU64,
    migrated_frames: AtomicU64,
    prefetch_fallbacks: AtomicU64,
    controller_kills: AtomicU64,
    rejoins: AtomicU64,
    catchup_plans: AtomicU64,
    catchup_fields: AtomicU64,
}

impl FaultPlan {
    pub fn new(spec: FaultSpec) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            timeline: spec.membership(),
            spec,
            events: Mutex::new(Vec::new()),
            counts: [const { AtomicU64::new(0) }; FaultKind::COUNT],
            read_retries: AtomicU64::new(0),
            backoff_us: AtomicU64::new(0),
            exhausted_reads: AtomicU64::new(0),
            checksum_failures: AtomicU64::new(0),
            wire_rejects: AtomicU64::new(0),
            degraded_blocks: AtomicU64::new(0),
            degraded_frames: AtomicU64::new(0),
            failover_events: AtomicU64::new(0),
            render_failovers: AtomicU64::new(0),
            output_failovers: AtomicU64::new(0),
            migrated_frames: AtomicU64::new(0),
            prefetch_fallbacks: AtomicU64::new(0),
            controller_kills: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            catchup_plans: AtomicU64::new(0),
            catchup_fields: AtomicU64::new(0),
        })
    }

    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// FNV-1a hash of a site description — the deterministic identity of
    /// an injection point.
    pub fn site_hash(parts: &[u64]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &p in parts {
            for b in p.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Site of a read: `(path, first byte offset, total bytes)`.
    pub fn read_site(path: &str, offset: u64, bytes: u64) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        FaultPlan::site_hash(&[h, offset, bytes])
    }

    /// Uniform roll in `[0, 1)` for `(salt, site, attempt)` — pure, so
    /// replay is exact.
    fn roll(&self, salt: u64, site: u64, attempt: u32) -> f64 {
        let mut rng = SplitMix64::new(
            self.spec.seed.wrapping_mul(0x9e3779b97f4a7c15)
                ^ salt.rotate_left(17)
                ^ site.wrapping_mul(0xbf58476d1ce4e5b9)
                ^ (attempt as u64).wrapping_mul(0x94d049bb133111eb),
        );
        rng.next_f64()
    }

    fn log(&self, kind: FaultKind, site: String, attempt: u32) {
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.events.lock().unwrap().push(FaultEvent { kind, site, attempt });
    }

    /// Roll the read faults for one attempt at `site` (precedence:
    /// transient, then corrupt, then slow). `describe` builds the log
    /// entry's site string lazily (faults are rare).
    pub fn read_fault(
        &self,
        site: u64,
        attempt: u32,
        describe: impl Fn() -> String,
    ) -> Option<ReadFault> {
        if self.spec.read_transient > 0.0
            && self.roll(SALT_TRANSIENT, site, attempt) < self.spec.read_transient
        {
            self.log(FaultKind::ReadTransient, describe(), attempt);
            return Some(ReadFault::Transient);
        }
        if self.spec.read_corrupt > 0.0
            && self.roll(SALT_CORRUPT, site, attempt) < self.spec.read_corrupt
        {
            self.log(FaultKind::ReadCorrupt, describe(), attempt);
            return Some(ReadFault::Corrupt);
        }
        if self.spec.read_slow > 0.0 && self.roll(SALT_SLOW, site, attempt) < self.spec.read_slow {
            self.log(FaultKind::ReadSlow, describe(), attempt);
            return Some(ReadFault::Slow { factor: self.spec.slow_factor });
        }
        None
    }

    /// Roll the comm faults for one lossy send `(src, dst, tag)` in world
    /// ranks (precedence: drop, then delay).
    pub fn send_fault(&self, src: usize, dst: usize, tag: u64) -> Option<SendFault> {
        let site = FaultPlan::site_hash(&[src as u64, dst as u64, tag]);
        if self.spec.send_drop > 0.0 && self.roll(SALT_DROP, site, 0) < self.spec.send_drop {
            self.log(FaultKind::SendDrop, format!("send {src}->{dst} tag {tag}"), 0);
            return Some(SendFault::Drop);
        }
        if self.spec.send_delay > 0.0 && self.roll(SALT_DELAY, site, 0) < self.spec.send_delay {
            self.log(FaultKind::SendDelay, format!("send {src}->{dst} tag {tag}"), 0);
            return Some(SendFault::Delay(Duration::from_millis(self.spec.delay_ms)));
        }
        None
    }

    /// Whether the lossy send `(src, dst, tag)` will be dropped: the same
    /// deterministic roll [`FaultPlan::send_fault`] makes at the send
    /// site, as a side-effect-free peek (no log entry — the send itself
    /// logs when it happens). This is the sender-local transmit-failure
    /// notification a real lossy transport delivers: layers that keep
    /// cross-step wire state (the temporal-delta codec) must not let a
    /// message the transport reported lost advance their idea of what
    /// the receiver holds.
    pub fn send_will_drop(&self, src: usize, dst: usize, tag: u64) -> bool {
        let site = FaultPlan::site_hash(&[src as u64, dst as u64, tag]);
        self.spec.send_drop > 0.0 && self.roll(SALT_DROP, site, 0) < self.spec.send_drop
    }

    /// Roll wire corruption for one lossy send; `Some(bits)` means the
    /// sender flips payload bit `bits % payload_bits` after checksumming,
    /// so the receiver's verify-on-receive catches it.
    pub fn wire_corrupt(&self, src: usize, dst: usize, tag: u64) -> Option<u64> {
        let site = FaultPlan::site_hash(&[src as u64, dst as u64, tag]);
        if self.spec.wire_corrupt > 0.0 && self.roll(SALT_WIRE, site, 0) < self.spec.wire_corrupt {
            self.log(FaultKind::WireCorrupt, format!("send {src}->{dst} tag {tag}"), 0);
            return Some(SplitMix64::new(self.spec.seed ^ SALT_BIT ^ site).next_u64());
        }
        None
    }

    /// Whether world rank `rank` is scripted dead at `step`: the last
    /// membership event at or before `step` is a kill. A bare `fail_rank`
    /// with no recovery keeps the original permanent-death semantics.
    pub fn rank_failed(&self, rank: usize, step: usize) -> bool {
        let mut dead = false;
        for ev in &self.timeline {
            if ev.rank() == rank && ev.step() <= step {
                dead = matches!(ev, MembershipEvent::Fail { .. });
            }
        }
        dead
    }

    /// The normalized membership timeline of the scripted target rank.
    pub fn membership_timeline(&self) -> &[MembershipEvent] {
        &self.timeline
    }

    /// Whether the timeline schedules `rank` to rejoin strictly after
    /// `step` — a death at `step` is a dormancy window, not a permanent
    /// exit, exactly when this holds.
    pub fn recovers_later(&self, rank: usize, step: usize) -> bool {
        self.timeline
            .iter()
            .any(|ev| matches!(*ev, MembershipEvent::Recover { rank: r, step: s } if r == rank && s > step))
    }

    /// The world rank with a scripted `recover_rank` event exactly at
    /// `step`, if any — the step every peer folds the joiner back in.
    pub fn rank_rejoins_at(&self, step: usize) -> Option<usize> {
        self.timeline.iter().find_map(|ev| match *ev {
            MembershipEvent::Recover { rank, step: s } if s == step => Some(rank),
            _ => None,
        })
    }

    /// Whether the timeline scripts any rejoin at all.
    pub fn has_rejoin(&self) -> bool {
        self.timeline.iter().any(|ev| matches!(ev, MembershipEvent::Recover { .. }))
    }

    /// The scripted spare-pool join `(rank, step)`: a `recover_rank` with
    /// no preceding `fail_rank` — the rank never held live state.
    pub fn spare_join(&self) -> Option<(usize, usize)> {
        match self.timeline.first() {
            Some(&MembershipEvent::Recover { rank, step }) => Some((rank, step)),
            _ => None,
        }
    }

    /// Whether the elastic controller is scripted dead at `step` (the
    /// kill is permanent, like [`FaultPlan::rank_failed`]).
    pub fn controller_failed(&self, step: usize) -> bool {
        matches!(self.spec.fail_controller, Some(s) if step >= s)
    }

    /// Whether the prefetch worker is scripted dead at `step` (permanent,
    /// like [`FaultPlan::rank_failed`]).
    pub fn prefetch_failed(&self, step: usize) -> bool {
        matches!(self.spec.fail_prefetch, Some(s) if step >= s)
    }

    /// The scripted render slowdown for world rank `rank` (1.0 = none).
    pub fn slow_rank_factor(&self, rank: usize) -> f64 {
        match self.spec.slow_rank {
            Some((r, f)) if r == rank => f,
            _ => 1.0,
        }
    }

    // --- recovery accounting -------------------------------------------

    pub fn note_retry(&self, backoff: Duration) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
        self.backoff_us.fetch_add(backoff.as_micros() as u64, Ordering::Relaxed);
    }

    pub fn note_exhausted(&self) {
        self.exhausted_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_wire_reject(&self) {
        self.wire_rejects.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_degraded_frame(&self, blocks: u64) {
        self.degraded_frames.fetch_add(1, Ordering::Relaxed);
        self.degraded_blocks.fetch_add(blocks, Ordering::Relaxed);
    }

    /// Record that `rank` was declared dead by its group (logged once per
    /// surviving detector).
    pub fn note_failover(&self, rank: usize, step: usize) {
        self.failover_events.fetch_add(1, Ordering::Relaxed);
        self.log(FaultKind::RankFail, format!("rank {rank} dead at step {step}"), 0);
    }

    /// Record that render-world rank `rank` was declared dead by a
    /// surviving render peer (logged once per surviving detector, like
    /// [`FaultPlan::note_failover`]).
    pub fn note_render_failover(&self, rank: usize, step: usize) {
        self.render_failovers.fetch_add(1, Ordering::Relaxed);
        self.log(FaultKind::RankFail, format!("render rank {rank} dead at step {step}"), 0);
    }

    /// Record that the output rank was declared dead by the supervising
    /// render rank, which assumes frame assembly from `step` onwards.
    pub fn note_output_failover(&self, rank: usize, step: usize) {
        self.output_failovers.fetch_add(1, Ordering::Relaxed);
        self.log(FaultKind::RankFail, format!("output rank {rank} dead at step {step}"), 0);
    }

    /// Record one frame assembled by the failover supervisor instead of
    /// the (dead) output rank.
    pub fn note_migrated_frame(&self) {
        self.migrated_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one step served synchronously after the prefetch worker
    /// thread died.
    pub fn note_prefetch_fallback(&self) {
        self.prefetch_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the scripted controller kill taking effect at `step`
    /// (logged once, by the rank that hosted the controller).
    pub fn note_controller_kill(&self, step: usize) {
        self.controller_kills.fetch_add(1, Ordering::Relaxed);
        self.log(FaultKind::RankFail, format!("controller dead at step {step}"), 0);
    }

    /// Record a joiner folded back into the run (one count per peer that
    /// processed its `TAG_JOIN`).
    pub fn note_rejoin(&self) {
        self.rejoins.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` committed plans a joiner replayed from history.
    pub fn note_catchup_plans(&self, n: u64) {
        self.catchup_plans.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one checkpointed field snapshot restored on rejoin.
    pub fn note_catchup_field(&self) {
        self.catchup_fields.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the recovery counters.
    pub fn recovery(&self) -> RecoveryStats {
        RecoveryStats {
            read_retries: self.read_retries.load(Ordering::Relaxed),
            backoff_us: self.backoff_us.load(Ordering::Relaxed),
            exhausted_reads: self.exhausted_reads.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            wire_rejects: self.wire_rejects.load(Ordering::Relaxed),
            degraded_blocks: self.degraded_blocks.load(Ordering::Relaxed),
            degraded_frames: self.degraded_frames.load(Ordering::Relaxed),
            failover_events: self.failover_events.load(Ordering::Relaxed),
            render_failovers: self.render_failovers.load(Ordering::Relaxed),
            output_failovers: self.output_failovers.load(Ordering::Relaxed),
            migrated_frames: self.migrated_frames.load(Ordering::Relaxed),
            prefetch_fallbacks: self.prefetch_fallbacks.load(Ordering::Relaxed),
            controller_kills: self.controller_kills.load(Ordering::Relaxed),
            rejoins: self.rejoins.load(Ordering::Relaxed),
            catchup_plans: self.catchup_plans.load(Ordering::Relaxed),
            catchup_fields: self.catchup_fields.load(Ordering::Relaxed),
        }
    }

    /// Injected faults per kind (zero rows included).
    pub fn counts(&self) -> Vec<(FaultKind, u64)> {
        FaultKind::ALL
            .iter()
            .map(|&k| (k, self.counts[k.index()].load(Ordering::Relaxed)))
            .collect()
    }

    /// Copy of the injected-fault log. Order is arrival order across
    /// threads; sort before comparing runs.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_of_every_key() {
        let spec = FaultSpec::parse(
            "seed=42,read_transient=0.05,read_corrupt=0.02,read_slow=0.5,slow_factor=4,\
             send_drop=0.1,send_delay=0.2,delay_ms=10,wire_corrupt=0.01,fail_rank=1@2,\
             fail_controller=4,slow_rank=3@2.5,fail_prefetch=2",
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.read_transient, 0.05);
        assert_eq!(spec.read_corrupt, 0.02);
        assert_eq!(spec.read_slow, 0.5);
        assert_eq!(spec.slow_factor, 4.0);
        assert_eq!(spec.send_drop, 0.1);
        assert_eq!(spec.send_delay, 0.2);
        assert_eq!(spec.delay_ms, 10);
        assert_eq!(spec.wire_corrupt, 0.01);
        assert_eq!(spec.fail_rank, Some((1, 2)));
        assert_eq!(spec.fail_controller, Some(4));
        assert_eq!(spec.slow_rank, Some((3, 2.5)));
        assert_eq!(spec.fail_prefetch, Some(2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("nonsense").is_err());
        assert!(FaultSpec::parse("unknown_key=1").is_err());
        assert!(FaultSpec::parse("read_transient=1.5").is_err());
        assert!(FaultSpec::parse("read_transient=-0.1").is_err());
        assert!(FaultSpec::parse("slow_factor=0.5").is_err());
        assert!(FaultSpec::parse("fail_rank=3").is_err());
        assert!(FaultSpec::parse("seed=abc").is_err());
        assert!(FaultSpec::parse("fail_controller=abc").is_err());
        assert!(FaultSpec::parse("slow_rank=3").is_err());
        assert!(FaultSpec::parse("slow_rank=1@0.5").is_err());
        assert!(FaultSpec::parse("fail_prefetch=abc").is_err());
    }

    #[test]
    fn empty_spec_is_fault_free() {
        let spec = FaultSpec::parse("").unwrap();
        let plan = FaultPlan::new(spec);
        for site in 0..1000u64 {
            assert_eq!(plan.read_fault(site, 0, String::new), None);
            assert_eq!(plan.send_fault(0, site as usize, site), None);
        }
        assert!(plan.events().is_empty());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let spec =
            FaultSpec::parse("seed=7,read_transient=0.3,read_corrupt=0.2,send_drop=0.25").unwrap();
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        let c = FaultPlan::new(
            FaultSpec::parse("seed=8,read_transient=0.3,read_corrupt=0.2,send_drop=0.25").unwrap(),
        );
        let mut differs = false;
        for site in 0..500u64 {
            for attempt in 0..3u32 {
                let fa = a.read_fault(site, attempt, String::new);
                let fb = b.read_fault(site, attempt, String::new);
                let fc = c.read_fault(site, attempt, String::new);
                assert_eq!(fa, fb, "site {site} attempt {attempt}");
                differs |= fa != fc;
            }
            assert_eq!(a.send_fault(0, 1, site), b.send_fault(0, 1, site));
        }
        assert!(differs, "different seeds must give a different schedule");
        // identical logs too (same injection order for a serial caller)
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn attempts_roll_independently() {
        // p = 0.5 transient: over many sites, some must fail attempt 0 and
        // pass attempt 1 (retry succeeds) — the retry loop depends on it
        let plan = FaultPlan::new(FaultSpec::parse("seed=1,read_transient=0.5").unwrap());
        let recovered = (0..200u64)
            .filter(|&site| {
                plan.read_fault(site, 0, String::new) == Some(ReadFault::Transient)
                    && plan.read_fault(site, 1, String::new).is_none()
            })
            .count();
        assert!(recovered > 20, "retries never recover ({recovered}/200)");
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let plan = FaultPlan::new(FaultSpec::parse("seed=3,read_transient=0.2").unwrap());
        let hits =
            (0..5000u64).filter(|&site| plan.read_fault(site, 0, String::new).is_some()).count();
        let rate = hits as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "injection rate {rate} far from 0.2");
    }

    #[test]
    fn rank_failure_is_permanent_without_recovery() {
        let plan = FaultPlan::new(FaultSpec::parse("fail_rank=2@3").unwrap());
        assert!(!plan.rank_failed(2, 0));
        assert!(!plan.rank_failed(2, 2));
        assert!(plan.rank_failed(2, 3));
        assert!(plan.rank_failed(2, 100));
        assert!(!plan.rank_failed(1, 100));
        assert!(!plan.has_rejoin());
        // a bare struct-literal fail_rank (no parsed timeline) behaves
        // identically — the compatibility fallback
        let bare = FaultPlan::new(FaultSpec { fail_rank: Some((2, 3)), ..FaultSpec::default() });
        assert!(!bare.rank_failed(2, 2));
        assert!(bare.rank_failed(2, 3));
        assert!(bare.rank_failed(2, 100));
    }

    #[test]
    fn recovery_opens_and_closes_death_windows() {
        let plan = FaultPlan::new(FaultSpec::parse("fail_rank=2@3,recover_rank=2@6").unwrap());
        assert!(!plan.rank_failed(2, 2));
        assert!(plan.rank_failed(2, 3));
        assert!(plan.rank_failed(2, 5));
        assert!(!plan.rank_failed(2, 6));
        assert!(!plan.rank_failed(2, 100));
        assert_eq!(plan.rank_rejoins_at(6), Some(2));
        assert_eq!(plan.rank_rejoins_at(5), None);
        assert!(plan.has_rejoin());
        assert_eq!(plan.spare_join(), None);
        // kill → recover → kill again: the second window is permanent
        let plan = FaultPlan::new(
            FaultSpec::parse("fail_rank=2@3,recover_rank=2@6,fail_rank=2@9").unwrap(),
        );
        assert!(plan.rank_failed(2, 4));
        assert!(!plan.rank_failed(2, 7));
        assert!(plan.rank_failed(2, 9));
        assert!(plan.rank_failed(2, 50));
        // the compatibility field carries the *first* kill
        assert_eq!(plan.spec().fail_rank, Some((2, 3)));
    }

    #[test]
    fn leading_recover_is_a_spare_join() {
        let plan = FaultPlan::new(FaultSpec::parse("recover_rank=4@5").unwrap());
        assert_eq!(plan.spare_join(), Some((4, 5)));
        assert_eq!(plan.spec().fail_rank, None);
        assert!(!plan.rank_failed(4, 0));
        assert!(!plan.rank_failed(4, 10));
        assert_eq!(plan.rank_rejoins_at(5), Some(4));
    }

    #[test]
    fn timeline_validation_rejects_inconsistent_schedules() {
        // two kills with no recovery between
        assert!(FaultSpec::parse("fail_rank=2@3,fail_rank=2@5").is_err());
        // recover while alive (not a leading spare join)
        assert!(FaultSpec::parse("fail_rank=2@3,recover_rank=2@6,recover_rank=2@8").is_err());
        // two different target ranks
        assert!(FaultSpec::parse("fail_rank=2@3,recover_rank=3@6").is_err());
        // non-increasing steps
        assert!(FaultSpec::parse("fail_rank=2@3,recover_rank=2@3").is_err());
        // garbage values
        assert!(FaultSpec::parse("recover_rank=3").is_err());
        assert!(FaultSpec::parse("recover_rank=a@3").is_err());
    }

    #[test]
    fn controller_failure_is_permanent_from_its_step() {
        let plan = FaultPlan::new(FaultSpec::parse("fail_controller=3").unwrap());
        assert!(!plan.controller_failed(0));
        assert!(!plan.controller_failed(2));
        assert!(plan.controller_failed(3));
        assert!(plan.controller_failed(100));
        let clean = FaultPlan::new(FaultSpec::parse("").unwrap());
        assert!(!clean.controller_failed(100));
    }

    #[test]
    fn prefetch_failure_is_permanent_from_its_step() {
        let plan = FaultPlan::new(FaultSpec::parse("fail_prefetch=2").unwrap());
        assert!(!plan.prefetch_failed(1));
        assert!(plan.prefetch_failed(2));
        assert!(plan.prefetch_failed(50));
        let clean = FaultPlan::new(FaultSpec::parse("").unwrap());
        assert!(!clean.prefetch_failed(50));
    }

    #[test]
    fn slow_rank_factor_targets_one_rank() {
        let plan = FaultPlan::new(FaultSpec::parse("slow_rank=4@3.5").unwrap());
        assert_eq!(plan.slow_rank_factor(4), 3.5);
        assert_eq!(plan.slow_rank_factor(3), 1.0);
        let clean = FaultPlan::new(FaultSpec::parse("").unwrap());
        assert_eq!(clean.slow_rank_factor(4), 1.0);
    }

    #[test]
    fn counters_and_log_track_injections() {
        let plan = FaultPlan::new(FaultSpec::parse("seed=5,read_transient=1").unwrap());
        for site in 0..10u64 {
            assert_eq!(
                plan.read_fault(site, 0, || format!("site {site}")),
                Some(ReadFault::Transient)
            );
        }
        let counts = plan.counts();
        assert_eq!(counts[FaultKind::ReadTransient.index()], (FaultKind::ReadTransient, 10));
        assert_eq!(plan.events().len(), 10);
        plan.note_retry(Duration::from_millis(2));
        plan.note_exhausted();
        plan.note_degraded_frame(3);
        let rec = plan.recovery();
        assert_eq!(rec.read_retries, 1);
        assert_eq!(rec.backoff_us, 2000);
        assert_eq!(rec.exhausted_reads, 1);
        assert_eq!(rec.degraded_frames, 1);
        assert_eq!(rec.degraded_blocks, 3);
    }

    #[test]
    fn slow_fault_carries_factor() {
        let plan = FaultPlan::new(FaultSpec::parse("seed=9,read_slow=1,slow_factor=4").unwrap());
        assert_eq!(plan.read_fault(1, 0, String::new), Some(ReadFault::Slow { factor: 4.0 }));
    }
}
