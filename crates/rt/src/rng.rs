//! A tiny deterministic PRNG (SplitMix64) so the workspace needs no
//! external `rand` — quality is far beyond what noise textures and test
//! shuffles require, and the sequence is stable across platforms.

/// SplitMix64: 64 bits of state, one multiply-shift-xor avalanche per
/// draw. Passes BigCrush when used as a 64-bit generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds give equal sequences.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)` (Lemire-style rejection-free
    /// widening multiply; negligible bias for the bounds used here).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8).map(|_| SplitMix64::new(1).next_u64()).collect();
        assert!(a.iter().all(|&v| v == a[0]));
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        let mut r3 = SplitMix64::new(8);
        let s1: Vec<u64> = (0..16).map(|_| r1.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| r2.next_u64()).collect();
        let s3: Vec<u64> = (0..16).map(|_| r3.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn unit_floats_well_distributed() {
        let mut r = SplitMix64::new(42);
        let n = 4096;
        let vals: Vec<f32> = (0..n).map(|_| r.next_f32()).collect();
        assert!(vals.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = vals.iter().sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let var = vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }
}
