//! Chaos-soak schedule generation and shrinking.
//!
//! The robustness layer is proven one fault *kind* at a time by the
//! focused tests; what those cannot show is that the recovery mechanisms
//! compose — that a dropped send during a rank's death window, or wire
//! corruption racing a rejoin, still terminates with a frame for every
//! step. The chaos harness closes that gap: [`chaos_clauses`] composes a
//! randomized-but-valid multi-fault schedule (kill + recover + slow +
//! drop + corrupt interleavings) from a seed, and a soak runs N pinned
//! seeds asserting every run completes. When a schedule *does* break the
//! pipeline, [`shrink`] reduces it to a 1-minimal reproducer: the
//! smallest clause subset that still fails, which is what goes into the
//! bug report instead of a 9-knob haystack.
//!
//! Everything here is pure and seeded ([`SplitMix64`]), so a failing
//! seed replays exactly — same schedule, same faults, same frames.

use crate::fault::FaultSpec;
use crate::rng::SplitMix64;

/// World shape and run length a generated schedule must respect: scripted
/// membership faults are only valid on survivable topologies, and every
/// step index must fall inside the run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosTopology {
    /// Input ranks in the world `[inputs | renderers | output]`.
    pub n_inputs: usize,
    /// Rendering ranks.
    pub renderers: usize,
    /// Steps the run executes.
    pub steps: usize,
    /// Whether input-rank kills are survivable here (2DIP groups of ≥ 2
    /// with independent contiguous reads, synchronous runtime).
    pub input_kills: bool,
}

/// One `key=value` clause per injected fault dimension, composed from
/// `seed`. The same seed always yields the same schedule; the clause list
/// always parses into a valid [`FaultSpec`] for the given topology (see
/// the generator tests). Join with [`compose`] to feed `QUAKEVIZ_FAULTS`
/// or `PipelineBuilder::faults`.
pub fn chaos_clauses(seed: u64, topo: &ChaosTopology) -> Vec<String> {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xc4a0_55ed);
    let mut clauses = vec![format!("seed={seed}")];
    // low-rate probabilistic faults: each dimension joins the schedule
    // independently, so seeds cover the single-fault corners as well as
    // the full interleaving
    if rng.next_f64() < 0.6 {
        clauses.push(format!("read_transient={:.3}", 0.005 + rng.next_f64() * 0.035));
    }
    if rng.next_f64() < 0.4 {
        clauses.push(format!("read_corrupt={:.3}", 0.005 + rng.next_f64() * 0.02));
    }
    if rng.next_f64() < 0.4 {
        clauses.push(format!("read_slow={:.3}", 0.01 + rng.next_f64() * 0.04));
        clauses.push(format!("slow_factor={}", 2 + rng.next_below(3)));
    }
    if rng.next_f64() < 0.5 {
        clauses.push(format!("send_drop={:.3}", 0.005 + rng.next_f64() * 0.03));
    }
    if rng.next_f64() < 0.3 {
        clauses.push(format!("send_delay={:.3}", 0.01 + rng.next_f64() * 0.04));
        clauses.push(format!("delay_ms={}", 1 + rng.next_below(4)));
    }
    if rng.next_f64() < 0.4 {
        clauses.push(format!("wire_corrupt={:.3}", 0.005 + rng.next_f64() * 0.015));
    }
    if topo.renderers >= 2 && rng.next_f64() < 0.4 {
        let rank = topo.n_inputs + rng.next_below(topo.renderers as u64) as usize;
        clauses.push(format!("slow_rank={rank}@{:.1}", 1.5 + rng.next_f64() * 1.5));
    }
    // membership schedule: a render-rank death window (kill + recover,
    // sometimes kill again), a permanent kill, or an input-group window
    // when the topology survives one. Steps are chosen so every event
    // fires inside the run with at least one step on each side.
    if topo.steps >= 4 {
        let roll = rng.next_f64();
        let max_evt = topo.steps - 1; // last step an event may land on
        if roll < 0.35 && topo.renderers >= 2 {
            let rank = topo.n_inputs + rng.next_below(topo.renderers as u64) as usize;
            let fail = 1 + rng.next_below((max_evt - 2) as u64) as usize;
            let recover = fail + 1 + rng.next_below((max_evt - fail) as u64) as usize;
            clauses.push(format!("fail_rank={rank}@{fail}"));
            clauses.push(format!("recover_rank={rank}@{recover}"));
            if recover + 1 < max_evt && rng.next_f64() < 0.3 {
                let again = recover + 1 + rng.next_below((max_evt - recover - 1) as u64) as usize;
                clauses.push(format!("fail_rank={rank}@{again}"));
            }
        } else if roll < 0.45 && topo.renderers >= 2 {
            let rank = topo.n_inputs + rng.next_below(topo.renderers as u64) as usize;
            let fail = 1 + rng.next_below((max_evt - 1) as u64) as usize;
            clauses.push(format!("fail_rank={rank}@{fail}"));
        } else if roll < 0.60 && topo.input_kills && topo.n_inputs >= 2 {
            let rank = rng.next_below(topo.n_inputs as u64) as usize;
            let fail = 1 + rng.next_below((max_evt - 2) as u64) as usize;
            let recover = fail + 1 + rng.next_below((max_evt - fail) as u64) as usize;
            clauses.push(format!("fail_rank={rank}@{fail}"));
            clauses.push(format!("recover_rank={rank}@{recover}"));
        }
    }
    clauses
}

/// Join clauses into the `key=value,key=value` spec-string form.
pub fn compose(clauses: &[String]) -> String {
    clauses.join(",")
}

/// Generate and parse a schedule in one step.
pub fn chaos_spec(seed: u64, topo: &ChaosTopology) -> FaultSpec {
    FaultSpec::parse(&compose(&chaos_clauses(seed, topo)))
        .expect("generated chaos schedule must parse")
}

/// Shrink a failing clause list to a 1-minimal reproducer: greedy delta
/// debugging at clause granularity. `fails` must return `true` when the
/// given subset still reproduces the failure — return `false` for
/// subsets that no longer fail *or* no longer form a valid spec (an
/// unparseable subset cannot reproduce anything). The input must itself
/// fail; the result is a subset from which no single clause can be
/// removed without losing the failure.
pub fn shrink<F: Fn(&[String]) -> bool>(clauses: &[String], fails: F) -> Vec<String> {
    let mut cur: Vec<String> = clauses.to_vec();
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if fails(&cand) {
                cur = cand;
                removed_any = true;
                // retry the same index: it now holds the next clause
            } else {
                i += 1;
            }
        }
        if !removed_any {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::MembershipEvent;

    fn topo() -> ChaosTopology {
        ChaosTopology { n_inputs: 2, renderers: 3, steps: 8, input_kills: true }
    }

    #[test]
    fn generator_is_deterministic_and_seed_sensitive() {
        let a = chaos_clauses(11, &topo());
        let b = chaos_clauses(11, &topo());
        assert_eq!(a, b);
        let differs = (0..20u64).any(|s| chaos_clauses(s, &topo()) != a);
        assert!(differs, "every seed produced the same schedule");
    }

    #[test]
    fn every_generated_schedule_is_valid() {
        for seed in 0..200u64 {
            let t = topo();
            let clauses = chaos_clauses(seed, &t);
            let spec =
                FaultSpec::parse(&compose(&clauses)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let world = t.n_inputs + t.renderers + 1;
            for ev in spec.membership() {
                assert!(ev.rank() < world - 1, "seed {seed}: event on output rank");
                assert!(ev.step() >= 1 && ev.step() < t.steps, "seed {seed}: step outside run");
                if ev.rank() < t.n_inputs {
                    assert!(t.input_kills, "seed {seed}: input kill on 1DIP topology");
                }
            }
        }
    }

    #[test]
    fn no_input_kills_when_topology_cannot_survive_them() {
        let t = ChaosTopology { n_inputs: 1, renderers: 2, steps: 8, input_kills: false };
        for seed in 0..200u64 {
            for ev in chaos_spec(seed, &t).membership() {
                assert!(ev.rank() >= t.n_inputs, "seed {seed}: scripted input kill");
                if let MembershipEvent::Fail { rank, .. } = ev {
                    assert!(rank < t.n_inputs + t.renderers, "seed {seed}: output kill");
                }
            }
        }
    }

    #[test]
    fn shrink_finds_the_minimal_failing_pair() {
        // synthetic failure: the pipeline "breaks" iff the schedule has
        // both wire corruption and send drops — everything else is noise
        let clauses: Vec<String> = [
            "seed=7",
            "read_transient=0.02",
            "wire_corrupt=0.01",
            "read_slow=0.03",
            "slow_factor=2",
            "send_drop=0.02",
            "send_delay=0.01",
            "delay_ms=2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let fails = |subset: &[String]| {
            subset.iter().any(|c| c.starts_with("wire_corrupt"))
                && subset.iter().any(|c| c.starts_with("send_drop"))
        };
        assert!(fails(&clauses));
        let minimal = shrink(&clauses, fails);
        assert_eq!(minimal.len(), 2, "minimal reproducer is the pair: {minimal:?}");
        assert!(minimal[0].starts_with("wire_corrupt"));
        assert!(minimal[1].starts_with("send_drop"));
    }

    #[test]
    fn shrink_respects_spec_validity_through_the_predicate() {
        // failure needs the *recovery* event; removing fail_rank alone
        // would leave an invalid spec, which the predicate reports as
        // not-failing, so the shrinker keeps the consistent pair
        let clauses: Vec<String> =
            ["seed=1", "fail_rank=2@3", "recover_rank=2@5", "send_delay=0.2", "delay_ms=1"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let fails = |subset: &[String]| {
            let Ok(spec) = FaultSpec::parse(&compose(subset)) else {
                return false;
            };
            // "bug" reproduces whenever a rejoin is scripted
            spec.membership().iter().any(|e| matches!(e, MembershipEvent::Recover { .. }))
        };
        assert!(fails(&clauses));
        let minimal = shrink(&clauses, fails);
        assert_eq!(minimal, vec!["recover_rank=2@5".to_string()], "{minimal:?}");
    }
}
