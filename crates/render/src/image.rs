//! Premultiplied-RGBA images and the compositing algebra.
//!
//! All intermediate rendering uses premultiplied alpha, which makes the
//! *over* operator associative — the property every sort-last compositing
//! algorithm (direct-send, SLIC, binary-swap) relies on: fragments can be
//! combined in any grouping as long as front-to-back order is respected.

/// One premultiplied RGBA sample; `a` is coverage/opacity in `[0, 1]`.
pub type Rgba = [f32; 4];

/// `front` over `back` for premultiplied colors.
#[inline]
pub fn over(front: Rgba, back: Rgba) -> Rgba {
    let t = 1.0 - front[3];
    [front[0] + back[0] * t, front[1] + back[1] * t, front[2] + back[2] * t, front[3] + back[3] * t]
}

/// An axis-aligned pixel rectangle, `x0/y0` inclusive, `x1/y1` exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScreenRect {
    pub x0: u32,
    pub y0: u32,
    pub x1: u32,
    pub y1: u32,
}

impl ScreenRect {
    /// The empty rectangle.
    pub const EMPTY: ScreenRect = ScreenRect { x0: 0, y0: 0, x1: 0, y1: 0 };

    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> ScreenRect {
        ScreenRect { x0, y0, x1: x1.max(x0), y1: y1.max(y0) }
    }

    #[inline]
    pub fn width(&self) -> u32 {
        self.x1 - self.x0
    }

    #[inline]
    pub fn height(&self) -> u32 {
        self.y1 - self.y0
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x1 <= self.x0 || self.y1 <= self.y0
    }

    #[inline]
    pub fn area(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    #[inline]
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Intersection (possibly empty).
    pub fn intersect(&self, o: &ScreenRect) -> ScreenRect {
        let r = ScreenRect {
            x0: self.x0.max(o.x0),
            y0: self.y0.max(o.y0),
            x1: self.x1.min(o.x1),
            y1: self.y1.min(o.y1),
        };
        if r.x1 <= r.x0 || r.y1 <= r.y0 {
            ScreenRect::EMPTY
        } else {
            r
        }
    }

    /// Smallest rect containing both (empty rects are identities).
    pub fn union(&self, o: &ScreenRect) -> ScreenRect {
        if self.is_empty() {
            return *o;
        }
        if o.is_empty() {
            return *self;
        }
        ScreenRect {
            x0: self.x0.min(o.x0),
            y0: self.y0.min(o.y0),
            x1: self.x1.max(o.x1),
            y1: self.y1.max(o.y1),
        }
    }
}

/// A dense premultiplied-RGBA image.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbaImage {
    width: u32,
    height: u32,
    pixels: Vec<Rgba>,
}

impl RgbaImage {
    /// A transparent-black image.
    pub fn new(width: u32, height: u32) -> RgbaImage {
        RgbaImage { width, height, pixels: vec![[0.0; 4]; (width * height) as usize] }
    }

    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    pub fn pixels(&self) -> &[Rgba] {
        &self.pixels
    }

    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [Rgba] {
        &mut self.pixels
    }

    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgba {
        self.pixels[(y * self.width + x) as usize]
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgba) {
        self.pixels[(y * self.width + x) as usize] = c;
    }

    /// Composite `other` *behind* this image (`self` over `other`),
    /// in place.
    pub fn over_inplace(&mut self, behind: &RgbaImage) {
        assert_eq!((self.width, self.height), (behind.width, behind.height));
        for (f, b) in self.pixels.iter_mut().zip(&behind.pixels) {
            *f = over(*f, *b);
        }
    }

    /// Composite a smaller image covering `rect` behind this image.
    pub fn over_rect_inplace(&mut self, rect: &ScreenRect, behind: &[Rgba]) {
        assert_eq!(rect.area() as usize, behind.len());
        for (ry, y) in (rect.y0..rect.y1).enumerate() {
            for (rx, x) in (rect.x0..rect.x1).enumerate() {
                let i = (y * self.width + x) as usize;
                self.pixels[i] = over(self.pixels[i], behind[ry * rect.width() as usize + rx]);
            }
        }
    }

    /// Blend onto an opaque background color and emit binary PPM (P6).
    pub fn to_ppm(&self, background: [f32; 3]) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            let t = 1.0 - p[3];
            for c in 0..3 {
                let v = p[c] + background[c] * t;
                out.push((v.clamp(0.0, 1.0) * 255.0 + 0.5) as u8);
            }
        }
        out
    }

    /// Root-mean-square difference over all channels — the image-quality
    /// metric for the adaptive-rendering comparison (Figure 3).
    pub fn rms_difference(&self, other: &RgbaImage) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let mut acc = 0.0f64;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            for c in 0..4 {
                let d = (a[c] - b[c]) as f64;
                acc += d * d;
            }
        }
        (acc / (self.pixels.len() as f64 * 4.0)).sqrt()
    }

    /// Shannon entropy of the luminance histogram (bits) — the
    /// information-content metric for the enhancement comparison
    /// (Figure 4): an image that "reveals very little variation" has low
    /// entropy; enhancement raises it.
    pub fn entropy(&self) -> f64 {
        let mut hist = [0u64; 256];
        for p in &self.pixels {
            let lum = (0.2126 * p[0] + 0.7152 * p[1] + 0.0722 * p[2]).clamp(0.0, 1.0);
            hist[(lum * 255.0) as usize] += 1;
        }
        let n = self.pixels.len() as f64;
        let mut h = 0.0;
        for &c in &hist {
            if c > 0 {
                let p = c as f64 / n;
                h -= p * p.log2();
            }
        }
        h
    }

    /// Mean gradient-magnitude of luminance — an edge-energy metric used
    /// to quantify what lighting adds (Figure 11).
    pub fn edge_energy(&self) -> f64 {
        if self.width < 2 || self.height < 2 {
            return 0.0;
        }
        let lum = |p: Rgba| (0.2126 * p[0] + 0.7152 * p[1] + 0.0722 * p[2]) as f64;
        let mut acc = 0.0;
        for y in 0..self.height - 1 {
            for x in 0..self.width - 1 {
                let l = lum(self.get(x, y));
                let dx = lum(self.get(x + 1, y)) - l;
                let dy = lum(self.get(x, y + 1)) - l;
                acc += (dx * dx + dy * dy).sqrt();
            }
        }
        acc / ((self.width - 1) as f64 * (self.height - 1) as f64)
    }

    /// Raw f32 bytes (for byte-level exchange in compositing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 16);
        for p in &self.pixels {
            for c in p {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn over_is_associative_premultiplied() {
        let a = [0.3, 0.1, 0.0, 0.4];
        let b = [0.2, 0.2, 0.1, 0.5];
        let c = [0.0, 0.3, 0.3, 0.6];
        let left = over(over(a, b), c);
        let right = over(a, over(b, c));
        for i in 0..4 {
            assert!((left[i] - right[i]).abs() < 1e-6, "channel {i}");
        }
    }

    #[test]
    fn over_opaque_front_wins() {
        let f = [0.5, 0.25, 0.1, 1.0];
        assert_eq!(over(f, [0.9, 0.9, 0.9, 1.0]), f);
    }

    #[test]
    fn over_transparent_front_passes_back() {
        let b = [0.5, 0.25, 0.1, 0.8];
        assert_eq!(over([0.0; 4], b), b);
    }

    #[test]
    fn rect_ops() {
        let a = ScreenRect::new(0, 0, 10, 10);
        let b = ScreenRect::new(5, 5, 15, 15);
        let i = a.intersect(&b);
        assert_eq!(i, ScreenRect::new(5, 5, 10, 10));
        assert_eq!(i.area(), 25);
        let u = a.union(&b);
        assert_eq!(u, ScreenRect::new(0, 0, 15, 15));
        let disjoint = ScreenRect::new(20, 20, 30, 30);
        assert!(a.intersect(&disjoint).is_empty());
        assert!(a.contains(9, 9));
        assert!(!a.contains(10, 9));
    }

    #[test]
    fn empty_rect_union_identity() {
        let a = ScreenRect::new(2, 3, 7, 9);
        assert_eq!(ScreenRect::EMPTY.union(&a), a);
        assert_eq!(a.union(&ScreenRect::EMPTY), a);
    }

    #[test]
    fn over_rect_inplace_places_correctly() {
        let mut img = RgbaImage::new(4, 4);
        let rect = ScreenRect::new(1, 1, 3, 3);
        let patch = vec![[0.0, 0.0, 0.0, 1.0]; 4];
        img.over_rect_inplace(&rect, &patch);
        assert_eq!(img.get(1, 1)[3], 1.0);
        assert_eq!(img.get(2, 2)[3], 1.0);
        assert_eq!(img.get(0, 0)[3], 0.0);
        assert_eq!(img.get(3, 3)[3], 0.0);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = RgbaImage::new(3, 2);
        let ppm = img.to_ppm([0.0, 0.0, 0.0]);
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn rms_zero_for_identical() {
        let mut a = RgbaImage::new(8, 8);
        a.set(3, 3, [0.5, 0.5, 0.5, 1.0]);
        assert_eq!(a.rms_difference(&a.clone()), 0.0);
        let b = RgbaImage::new(8, 8);
        assert!(a.rms_difference(&b) > 0.0);
    }

    #[test]
    fn entropy_flat_vs_varied() {
        let flat = RgbaImage::new(16, 16);
        assert_eq!(flat.entropy(), 0.0); // single bin
        let mut varied = RgbaImage::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let v = (x + 16 * y) as f32 / 255.0;
                varied.set(x, y, [v, v, v, 1.0]);
            }
        }
        assert!(varied.entropy() > 6.0);
    }

    #[test]
    fn edge_energy_detects_structure() {
        let flat = RgbaImage::new(16, 16);
        let mut edgy = RgbaImage::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let v = if (x / 2 + y / 2) % 2 == 0 { 1.0 } else { 0.0 };
                edgy.set(x, y, [v, v, v, 1.0]);
            }
        }
        assert!(edgy.edge_energy() > flat.edge_energy());
    }
}
