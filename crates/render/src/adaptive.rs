//! Adaptive octree level selection (paper §4.1, Figure 3).
//!
//! "Rendering cost can be cut significantly by moving up the octree and
//! rendering at coarser-level blocks instead. … Presently the appropriate
//! level to use is computed based on the image resolution, data
//! resolution, and a user-specified limit to the number of elements that
//! project to the same pixel."
//!
//! We implement exactly that rule: for candidate level `ℓ`, the expected
//! number of elements landing on one pixel is
//! `cells(ℓ) / (image pixels covered by the data)`; the policy picks the
//! **finest** level whose per-pixel element count stays within the budget
//! (rendering finer than that adds cost without adding visible detail).

use quakeviz_mesh::Octree;

/// The adaptive-rendering policy.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePolicy {
    /// Maximum elements that may project onto a single pixel.
    pub max_cells_per_pixel: f64,
    /// Fraction of the image the projected data covers (≈ 0.5 for the
    /// paper's framing; used to convert image size to covered pixels).
    pub coverage: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy { max_cells_per_pixel: 4.0, coverage: 0.5 }
    }
}

impl AdaptivePolicy {
    /// Expected elements per covered pixel at `level`.
    pub fn cells_per_pixel(&self, octree: &Octree, level: u8, width: u32, height: u32) -> f64 {
        let pixels = (width as f64 * height as f64 * self.coverage).max(1.0);
        octree.cell_count_at_level(level) as f64 / pixels
    }

    /// Choose the rendering level for an image of `width`×`height`.
    ///
    /// Returns the finest level not exceeding the per-pixel budget; if even
    /// the coarsest level exceeds it (a tiny image), returns level 0's
    /// nearest usable level. The result never exceeds the data resolution
    /// (`max_leaf_level`) — rendering finer than the data adds nothing.
    pub fn choose_level(&self, octree: &Octree, width: u32, height: u32) -> u8 {
        let max = octree.max_leaf_level();
        let mut chosen = 0;
        for level in 0..=max {
            if self.cells_per_pixel(octree, level, width, height) <= self.max_cells_per_pixel {
                chosen = level;
            } else {
                break;
            }
        }
        chosen
    }

    /// Predicted render-cost ratio of full resolution vs the adaptive
    /// level (the "3–4 times faster" of Figure 3): cost scales with the
    /// number of cells marched.
    pub fn predicted_speedup(&self, octree: &Octree, width: u32, height: u32) -> f64 {
        let level = self.choose_level(octree, width, height);
        octree.cell_count() as f64 / octree.cell_count_at_level(level).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quakeviz_mesh::{Octree, UniformRefinement, Vec3};

    fn tree(level: u8) -> Octree {
        Octree::build(Vec3::ONE, &UniformRefinement(level))
    }

    #[test]
    fn big_image_gets_full_resolution() {
        let t = tree(4); // 4096 cells
        let p = AdaptivePolicy::default();
        // 1024x1024: far more pixels than cells -> render at full depth
        assert_eq!(p.choose_level(&t, 1024, 1024), 4);
    }

    #[test]
    fn small_image_coarsens() {
        let t = tree(6); // 262144 cells
        let p = AdaptivePolicy::default();
        let small = p.choose_level(&t, 64, 64);
        let large = p.choose_level(&t, 2048, 2048);
        assert!(small < large, "small image must use a coarser level: {small} vs {large}");
    }

    #[test]
    fn level_monotone_in_image_size() {
        let t = tree(6);
        let p = AdaptivePolicy::default();
        let mut prev = 0;
        for s in [32u32, 64, 128, 256, 512, 1024, 2048] {
            let l = p.choose_level(&t, s, s);
            assert!(l >= prev, "level must not decrease with image size");
            prev = l;
        }
    }

    #[test]
    fn budget_respected() {
        let t = tree(6);
        let p = AdaptivePolicy { max_cells_per_pixel: 2.0, coverage: 1.0 };
        let l = p.choose_level(&t, 128, 128);
        assert!(p.cells_per_pixel(&t, l, 128, 128) <= 2.0);
        // the next level (if any) would blow the budget
        if l < t.max_leaf_level() {
            assert!(p.cells_per_pixel(&t, l + 1, 128, 128) > 2.0);
        }
    }

    #[test]
    fn tighter_budget_coarser_level() {
        let t = tree(6);
        let loose = AdaptivePolicy { max_cells_per_pixel: 16.0, coverage: 0.5 };
        let tight = AdaptivePolicy { max_cells_per_pixel: 0.5, coverage: 0.5 };
        assert!(tight.choose_level(&t, 256, 256) <= loose.choose_level(&t, 256, 256));
    }

    #[test]
    fn predicted_speedup_at_least_one() {
        let t = tree(5);
        let p = AdaptivePolicy::default();
        assert!(p.predicted_speedup(&t, 64, 64) >= 1.0);
        // a small image should predict a large speedup (Figure 3: 3-4x)
        assert!(p.predicted_speedup(&t, 32, 32) > 3.0);
    }
}
