//! Look-at perspective camera.

use quakeviz_mesh::{Aabb, Vec3};

/// A pinhole camera: `eye` looking at `target`, vertical field of view
/// `fov_y` (radians), square pixels.
#[derive(Debug, Clone)]
pub struct Camera {
    pub eye: Vec3,
    pub target: Vec3,
    pub up: Vec3,
    pub fov_y: f64,
    pub width: u32,
    pub height: u32,
    // cached orthonormal basis
    forward: Vec3,
    right: Vec3,
    true_up: Vec3,
}

impl Camera {
    pub fn look_at(
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        fov_y: f64,
        width: u32,
        height: u32,
    ) -> Camera {
        let forward = (target - eye).normalized();
        let right = forward.cross(up).normalized();
        let true_up = right.cross(forward);
        assert!(right.length() > 0.5, "up vector parallel to view direction");
        Camera { eye, target, up, fov_y, width, height, forward, right, true_up }
    }

    /// A default viewpoint for a dataset of the given bounds: slightly
    /// elevated three-quarter view looking at the domain centre (like the
    /// paper's figures, which view the basin from above at an angle).
    pub fn default_for(bounds: &Aabb, width: u32, height: u32) -> Camera {
        let c = bounds.center();
        let e = bounds.extent();
        let eye = Vec3::new(
            c.x - 1.1 * e.x,
            c.y - 0.9 * e.y,
            // z grows with depth, so "above the surface" is negative z
            -1.1 * e.max_component(),
        );
        Camera::look_at(eye, c, Vec3::new(0.0, 0.0, -1.0), 0.6, width, height)
    }

    /// View direction (unit).
    #[inline]
    pub fn forward(&self) -> Vec3 {
        self.forward
    }

    /// World-space ray through pixel centre `(px, py)`:
    /// returns `(origin, unit direction)`.
    pub fn ray(&self, px: u32, py: u32) -> (Vec3, Vec3) {
        let aspect = self.width as f64 / self.height as f64;
        let half_h = (self.fov_y * 0.5).tan();
        let half_w = half_h * aspect;
        // NDC in [-1, 1] with y pointing up the image
        let nx = ((px as f64 + 0.5) / self.width as f64) * 2.0 - 1.0;
        let ny = 1.0 - ((py as f64 + 0.5) / self.height as f64) * 2.0;
        let dir = self.forward + self.right * (nx * half_w) + self.true_up * (ny * half_h);
        (self.eye, dir.normalized())
    }

    /// Project a world point: returns `(px, py, depth)` with pixel
    /// coordinates (may be off-screen) and view-space depth; `None` when
    /// the point is behind the camera.
    pub fn project(&self, p: Vec3) -> Option<(f64, f64, f64)> {
        let v = p - self.eye;
        let depth = v.dot(self.forward);
        if depth <= 1e-9 {
            return None;
        }
        let aspect = self.width as f64 / self.height as f64;
        let half_h = (self.fov_y * 0.5).tan();
        let half_w = half_h * aspect;
        let x = v.dot(self.right) / depth / half_w; // [-1, 1]
        let y = v.dot(self.true_up) / depth / half_h;
        let px = (x + 1.0) * 0.5 * self.width as f64;
        let py = (1.0 - y) * 0.5 * self.height as f64;
        Some((px, py, depth))
    }

    /// Screen bounding rectangle of a world AABB, clamped to the image;
    /// `None` when fully behind the camera or off screen.
    pub fn project_aabb(&self, b: &Aabb) -> Option<crate::image::ScreenRect> {
        let mut lo = (f64::INFINITY, f64::INFINITY);
        let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        let mut behind = false;
        for i in 0..8 {
            let p = Vec3::new(
                if i & 1 == 0 { b.min.x } else { b.max.x },
                if i & 2 == 0 { b.min.y } else { b.max.y },
                if i & 4 == 0 { b.min.z } else { b.max.z },
            );
            match self.project(p) {
                Some((x, y, _)) => {
                    any = true;
                    lo.0 = lo.0.min(x);
                    lo.1 = lo.1.min(y);
                    hi.0 = hi.0.max(x);
                    hi.1 = hi.1.max(y);
                }
                None => behind = true,
            }
        }
        if !any {
            return None;
        }
        if behind {
            // box pierces the camera plane: be conservative
            return Some(crate::image::ScreenRect::new(0, 0, self.width, self.height));
        }
        let x0 = lo.0.floor().max(0.0) as u32;
        let y0 = lo.1.floor().max(0.0) as u32;
        let x1 = (hi.0.ceil().max(0.0) as u32).min(self.width);
        let y1 = (hi.1.ceil().max(0.0) as u32).min(self.height);
        if x1 <= x0 || y1 <= y0 {
            None
        } else {
            Some(crate::image::ScreenRect::new(x0, y0, x1, y1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            0.8,
            100,
            100,
        )
    }

    #[test]
    fn center_pixel_ray_points_forward() {
        let c = cam();
        let (o, d) = c.ray(50, 50);
        assert_eq!(o, c.eye);
        assert!(d.dot(c.forward()) > 0.999, "center ray should align with forward");
    }

    #[test]
    fn project_center_lands_mid_image() {
        let c = cam();
        let (px, py, depth) = c.project(Vec3::ZERO).unwrap();
        assert!((px - 50.0).abs() < 1e-9);
        assert!((py - 50.0).abs() < 1e-9);
        assert!((depth - 5.0).abs() < 1e-9);
    }

    #[test]
    fn project_behind_camera_none() {
        let c = cam();
        assert!(c.project(Vec3::new(0.0, 0.0, -10.0)).is_none());
    }

    #[test]
    fn ray_project_roundtrip() {
        let c = cam();
        for (px, py) in [(10u32, 80u32), (50, 50), (99, 0)] {
            let (o, d) = c.ray(px, py);
            let p = o + d * 7.0;
            let (qx, qy, _) = c.project(p).unwrap();
            assert!((qx - (px as f64 + 0.5)).abs() < 1e-6, "{px},{py} -> {qx}");
            assert!((qy - (py as f64 + 0.5)).abs() < 1e-6);
        }
    }

    #[test]
    fn aabb_projection_contains_center_projection() {
        let c = cam();
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        let rect = c.project_aabb(&b).unwrap();
        let (px, py, _) = c.project(b.center()).unwrap();
        assert!(rect.contains(px as u32, py as u32));
        // off-screen box
        let far = Aabb::new(Vec3::new(1000.0, 1000.0, 0.0), Vec3::new(1001.0, 1001.0, 1.0));
        assert!(c.project_aabb(&far).is_none());
    }

    #[test]
    fn default_camera_sees_the_domain() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(40_000.0, 40_000.0, 20_000.0));
        let c = Camera::default_for(&b, 64, 64);
        let rect = c.project_aabb(&b).expect("domain visible");
        assert!(rect.area() > 100, "domain should cover a decent part of the image");
    }
}
