//! Temporal-domain enhancement (paper §4.2, Figure 4).
//!
//! Halfway into the simulation, direct volume rendering of the raw
//! magnitude "reveals very little variation": late, weak wavefronts are
//! crushed by the global opacity mapping chosen for the strong early
//! motion. The fix is a *local temporal filter*: boost each node by its
//! rate of change, computed from the previous and/or next time step — wave
//! fronts are exactly where the field changes fastest. The filter runs on
//! the input processors (it needs adjacent time steps, which they hold)
//! and the user can toggle it per frame.

use quakeviz_mesh::NodeField;

/// The enhancement filter: `out = max(v, gain · |Δv|)` with `Δv` the
/// larger of the backward and forward temporal differences.
#[derive(Debug, Clone, Copy)]
pub struct TemporalEnhance {
    /// Amplification of the temporal difference (≫1 since fronts are
    /// weak relative to peaks).
    pub gain: f32,
}

impl Default for TemporalEnhance {
    fn default() -> Self {
        TemporalEnhance { gain: 4.0 }
    }
}

impl TemporalEnhance {
    pub fn new(gain: f32) -> Self {
        TemporalEnhance { gain }
    }

    /// Apply to `curr` given its temporal neighbours (either may be
    /// absent at the ends of the sequence; with neither, `curr` is
    /// returned unchanged).
    pub fn apply(
        &self,
        curr: &NodeField,
        prev: Option<&NodeField>,
        next: Option<&NodeField>,
    ) -> NodeField {
        let n = curr.len();
        if let Some(p) = prev {
            assert_eq!(p.len(), n, "prev step size mismatch");
        }
        if let Some(f) = next {
            assert_eq!(f.len(), n, "next step size mismatch");
        }
        let mut out = Vec::with_capacity(n);
        let cv = curr.values();
        for i in 0..n {
            let mut delta = 0.0f32;
            if let Some(p) = prev {
                delta = delta.max((cv[i] - p.values()[i]).abs());
            }
            if let Some(f) = next {
                delta = delta.max((f.values()[i] - cv[i]).abs());
            }
            out.push(cv[i].max(self.gain * delta));
        }
        NodeField::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_field_unchanged() {
        let f = NodeField::new(vec![0.1, 0.5, 0.9]);
        let e = TemporalEnhance::default().apply(&f, Some(&f.clone()), Some(&f.clone()));
        assert_eq!(e.values(), f.values());
    }

    #[test]
    fn no_neighbours_is_identity() {
        let f = NodeField::new(vec![0.3, 0.7]);
        let e = TemporalEnhance::default().apply(&f, None, None);
        assert_eq!(e.values(), f.values());
    }

    #[test]
    fn moving_front_boosted() {
        // a weak pulse moving one cell per step
        let prev = NodeField::new(vec![0.10, 0.00, 0.00, 0.00]);
        let curr = NodeField::new(vec![0.00, 0.10, 0.00, 0.00]);
        let next = NodeField::new(vec![0.00, 0.00, 0.10, 0.00]);
        let e = TemporalEnhance::new(4.0).apply(&curr, Some(&prev), Some(&next));
        // at the front (index 1) the difference is 0.1 -> boosted to 0.4
        assert!((e.get(1) - 0.4).abs() < 1e-6);
        // trailing position (index 0) also changed (0.1 -> 0)
        assert!((e.get(0) - 0.4).abs() < 1e-6);
        // far field untouched
        assert_eq!(e.get(3), 0.0);
    }

    #[test]
    fn enhancement_never_decreases() {
        let prev = NodeField::new(vec![0.5, 0.2, 0.0]);
        let curr = NodeField::new(vec![0.5, 0.3, 0.9]);
        let e = TemporalEnhance::new(2.0).apply(&curr, Some(&prev), None);
        for (ev, cv) in e.values().iter().zip(curr.values()) {
            assert!(ev >= cv);
        }
    }

    #[test]
    fn backward_only_at_sequence_end() {
        let prev = NodeField::new(vec![0.0, 0.4]);
        let curr = NodeField::new(vec![0.0, 0.1]);
        let e = TemporalEnhance::new(3.0).apply(&curr, Some(&prev), None);
        assert!((e.get(1) - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let a = NodeField::new(vec![0.0; 3]);
        let b = NodeField::new(vec![0.0; 4]);
        TemporalEnhance::default().apply(&a, Some(&b), None);
    }
}
