//! Piecewise-linear RGBA transfer functions.
//!
//! Input scalars are normalized to `[0, 1]` (the dataset carries its global
//! magnitude range). The seismic preset follows the paper's figures: quiet
//! regions transparent blue, moderate shaking cyan→green→yellow, strong
//! shaking opaque red.

use crate::image::Rgba;

/// A transfer function defined by sorted `(value, straight RGBA)` control
/// points; lookup interpolates linearly and returns **premultiplied** RGBA
/// scaled by the caller's opacity correction.
#[derive(Debug, Clone)]
pub struct TransferFunction {
    /// Control points: (normalized value, [r, g, b, a]) with straight alpha.
    points: Vec<(f32, [f32; 4])>,
}

impl TransferFunction {
    /// Build from control points (sorted by value at construction).
    pub fn new(mut points: Vec<(f32, [f32; 4])>) -> TransferFunction {
        assert!(points.len() >= 2, "need at least two control points");
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        TransferFunction { points }
    }

    /// The control points (sorted by value) — the function's full
    /// identity, e.g. for cache keying.
    pub fn points(&self) -> &[(f32, [f32; 4])] {
        &self.points
    }

    /// The paper-style seismic map: transparent where quiet, warm and
    /// opaque where shaking is strong.
    pub fn seismic() -> TransferFunction {
        TransferFunction::new(vec![
            (0.00, [0.02, 0.03, 0.15, 0.000]),
            (0.05, [0.05, 0.10, 0.45, 0.010]),
            (0.20, [0.00, 0.55, 0.75, 0.060]),
            (0.40, [0.10, 0.80, 0.25, 0.150]),
            (0.60, [0.95, 0.90, 0.10, 0.350]),
            (0.80, [0.95, 0.45, 0.05, 0.650]),
            (1.00, [0.90, 0.05, 0.05, 0.900]),
        ])
    }

    /// A grayscale ramp (testing / LIC underlays).
    pub fn grayscale() -> TransferFunction {
        TransferFunction::new(vec![(0.0, [0.0, 0.0, 0.0, 0.0]), (1.0, [1.0, 1.0, 1.0, 1.0])])
    }

    /// Straight (non-premultiplied) RGBA at normalized value `v`
    /// (clamped).
    pub fn lookup(&self, v: f32) -> [f32; 4] {
        let v = v.clamp(self.points[0].0, self.points.last().unwrap().0);
        let i = self.points.partition_point(|&(x, _)| x <= v).min(self.points.len() - 1);
        if i == 0 {
            return self.points[0].1;
        }
        let (x0, c0) = self.points[i - 1];
        let (x1, c1) = self.points[i];
        if x1 <= x0 {
            return c1;
        }
        let t = ((v - x0) / (x1 - x0)).clamp(0.0, 1.0);
        let mut out = [0.0f32; 4];
        for c in 0..4 {
            out[c] = c0[c] + (c1[c] - c0[c]) * t;
        }
        out
    }

    /// Premultiplied sample contribution for a ray segment of length
    /// `ds` relative to the reference step `ds_ref` (opacity correction
    /// `a' = 1 − (1 − a)^(ds/ds_ref)`).
    pub fn sample(&self, v: f32, ds_ratio: f32) -> Rgba {
        let c = self.lookup(v);
        let a = 1.0 - (1.0 - c[3]).powf(ds_ratio.max(1e-6));
        [c[0] * a, c[1] * a, c[2] * a, a]
    }

    /// Largest opacity anywhere (sanity checks / early-termination limits).
    pub fn max_opacity(&self) -> f32 {
        self.points.iter().map(|p| p.1[3]).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_interpolates_linearly() {
        let tf =
            TransferFunction::new(vec![(0.0, [0.0, 0.0, 0.0, 0.0]), (1.0, [1.0, 0.5, 0.0, 1.0])]);
        let c = tf.lookup(0.5);
        assert!((c[0] - 0.5).abs() < 1e-6);
        assert!((c[1] - 0.25).abs() < 1e-6);
        assert!((c[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lookup_clamps_out_of_range() {
        let tf = TransferFunction::grayscale();
        assert_eq!(tf.lookup(-5.0), tf.lookup(0.0));
        assert_eq!(tf.lookup(5.0), tf.lookup(1.0));
    }

    #[test]
    fn lookup_exact_control_points() {
        let tf = TransferFunction::seismic();
        let c = tf.lookup(1.0);
        assert!((c[3] - 0.9).abs() < 1e-6);
        let c0 = tf.lookup(0.0);
        assert_eq!(c0[3], 0.0);
    }

    #[test]
    fn unsorted_points_sorted_at_build() {
        let tf =
            TransferFunction::new(vec![(1.0, [1.0, 1.0, 1.0, 1.0]), (0.0, [0.0, 0.0, 0.0, 0.0])]);
        assert!((tf.lookup(0.25)[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sample_is_premultiplied() {
        let tf =
            TransferFunction::new(vec![(0.0, [1.0, 1.0, 1.0, 0.0]), (1.0, [1.0, 1.0, 1.0, 0.5])]);
        let s = tf.sample(1.0, 1.0);
        assert!((s[3] - 0.5).abs() < 1e-6);
        assert!((s[0] - 0.5).abs() < 1e-6, "rgb must be scaled by alpha");
    }

    #[test]
    fn opacity_correction_composes() {
        // two half-steps must equal one full step in accumulated opacity
        let tf =
            TransferFunction::new(vec![(0.0, [1.0, 1.0, 1.0, 0.4]), (1.0, [1.0, 1.0, 1.0, 0.4])]);
        let full = tf.sample(0.5, 1.0)[3];
        let half = tf.sample(0.5, 0.5)[3];
        let two_halves = half + half * (1.0 - half);
        assert!((two_halves - full).abs() < 1e-5, "{two_halves} vs {full}");
    }

    #[test]
    fn seismic_is_monotone_in_opacity() {
        let tf = TransferFunction::seismic();
        let mut prev = -1.0f32;
        for i in 0..=100 {
            let a = tf.lookup(i as f32 / 100.0)[3];
            assert!(a >= prev - 1e-6, "opacity must not decrease");
            prev = a;
        }
        assert!(tf.max_opacity() > 0.8);
    }
}
