//! Front-to-back ray casting of bricks into screen-space fragments.
//!
//! Each rendering processor ray-casts its own bricks; one brick yields one
//! [`Fragment`] — the premultiplied partial image over the brick's screen
//! rectangle. Fragments are what the sort-last compositing stage exchanges
//! (paper §4.4). A brick is convex, so compositing fragments in global
//! block visibility order reproduces the sequential single-processor image
//! exactly — the invariant the compositing property-tests check.

use crate::brick::Brick;
use crate::camera::Camera;
use crate::image::{over, Rgba, RgbaImage, ScreenRect};
use crate::transfer::TransferFunction;
use quakeviz_mesh::{HexMesh, NodeField, OctreeBlock, Vec3};
use quakeviz_rt::obs::prof;
use quakeviz_rt::par::par_map;

/// Blinn-Phong lighting parameters (paper §6: "lighting requires
/// calculations of gradient information to approximate local surface
/// orientation plus solving the lighting equation at each sample point").
#[derive(Debug, Clone)]
pub struct LightingParams {
    pub ambient: f32,
    pub diffuse: f32,
    pub specular: f32,
    pub shininess: f32,
    /// Directional light, world space (normalized at use).
    pub light_dir: Vec3,
    /// Gradient magnitude (in normalized-value-per-world-unit) below which
    /// shading is skipped (homogeneous regions have no surface).
    pub gradient_floor: f64,
}

impl Default for LightingParams {
    fn default() -> Self {
        LightingParams {
            ambient: 0.35,
            diffuse: 0.60,
            specular: 0.25,
            shininess: 24.0,
            light_dir: Vec3::new(-0.5, -0.3, -0.8),
            gradient_floor: 1e-4,
        }
    }
}

/// Renderer knobs.
#[derive(Debug, Clone)]
pub struct RenderParams {
    /// March step as a fraction of the brick's smallest cell edge.
    pub step_scale: f64,
    /// Optional gradient lighting.
    pub lighting: Option<LightingParams>,
    /// Stop a ray once accumulated opacity exceeds this.
    pub early_termination: f32,
    /// World length over which the transfer function's opacity applies
    /// once. `None` uses each brick's own cell size (resolution-dependent
    /// appearance); the pipeline sets the finest mesh spacing so opacity
    /// is consistent across bricks and across adaptive levels.
    pub opacity_unit: Option<f64>,
    /// Ray-cast image rows on the rayon pool. Default **off**: inside the
    /// pipeline each rendering *rank* is one thread, and the paper's
    /// renderer is pure message-passing (§7: "we have not exploited the
    /// SMP features"). Enable for single-process rendering.
    pub parallel_rows: bool,
}

impl Default for RenderParams {
    fn default() -> Self {
        RenderParams {
            step_scale: 0.7,
            lighting: None,
            early_termination: 0.98,
            opacity_unit: None,
            parallel_rows: false,
        }
    }
}

/// The partial image of one block over its screen rectangle
/// (premultiplied RGBA, row-major within `rect`).
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    pub block: u32,
    pub rect: ScreenRect,
    pub pixels: Vec<Rgba>,
}

impl Fragment {
    /// Payload bytes if shipped raw (16 B/pixel) — compositing accounting.
    pub fn byte_size(&self) -> u64 {
        self.rect.area() * 16
    }

    /// The pixel at absolute screen coordinates (must lie in `rect`).
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgba {
        debug_assert!(self.rect.contains(x, y));
        let w = self.rect.width();
        self.pixels[((y - self.rect.y0) * w + (x - self.rect.x0)) as usize]
    }
}

/// Ray-cast one brick. Returns `None` when the brick projects off screen
/// or contributes nothing (fully transparent).
pub fn render_brick(
    brick: &Brick,
    camera: &Camera,
    tf: &TransferFunction,
    params: &RenderParams,
) -> Option<Fragment> {
    let rect = camera.project_aabb(&brick.bounds)?;
    let w = rect.width() as usize;
    let h = rect.height() as usize;
    let ds = brick.min_spacing() * params.step_scale;
    let ds_ratio = (ds / params.opacity_unit.unwrap_or_else(|| brick.min_spacing())) as f32;
    let mut pixels = vec![[0.0f32; 4]; w * h];
    let mut any = false;

    // (rays that hit the brick, volume samples taken, rays stopped by
    // early termination) — published as prof ticks when QUAKEVIZ_PROF is
    // on; the counts are deterministic for a fixed scene, so the bench
    // baseline can catch work regressions wall-clock noise would hide
    let cast_row = |ry: usize| -> (Vec<Rgba>, bool, (u64, u64, u64)) {
        let y = rect.y0 + ry as u32;
        let mut row = vec![[0.0f32; 4]; w];
        let mut row_any = false;
        let (mut rays, mut samples, mut early) = (0u64, 0u64, 0u64);
        for rx in 0..w {
            let x = rect.x0 + rx as u32;
            let (o, d) = camera.ray(x, y);
            let Some((t0, t1)) = brick.bounds.ray_intersect(o, d) else {
                continue;
            };
            rays += 1;
            let mut acc = [0.0f32; 4];
            let mut t = t0 + ds * 0.5;
            while t < t1 && acc[3] < params.early_termination {
                let p = o + d * t;
                let v = brick.sample(p);
                let mut s = tf.sample(v, ds_ratio);
                if s[3] > 1e-5 {
                    if let Some(lp) = &params.lighting {
                        shade(&mut s, brick, p, d, lp);
                    }
                    // front-to-back accumulation
                    let tr = 1.0 - acc[3];
                    acc[0] += s[0] * tr;
                    acc[1] += s[1] * tr;
                    acc[2] += s[2] * tr;
                    acc[3] += s[3] * tr;
                }
                samples += 1;
                t += ds;
            }
            if acc[3] >= params.early_termination {
                early += 1;
            }
            if acc[3] > 0.0 {
                row_any = true;
                row[rx] = acc;
            }
        }
        (row, row_any, (rays, samples, early))
    };

    let (mut rays, mut samples, mut early) = (0u64, 0u64, 0u64);
    if params.parallel_rows {
        let rows: Vec<(Vec<Rgba>, bool, (u64, u64, u64))> = par_map(h, cast_row);
        for (ry, (row, row_any, n)) in rows.into_iter().enumerate() {
            any |= row_any;
            pixels[ry * w..(ry + 1) * w].copy_from_slice(&row);
            (rays, samples, early) = (rays + n.0, samples + n.1, early + n.2);
        }
    } else {
        for ry in 0..h {
            let (row, row_any, n) = cast_row(ry);
            any |= row_any;
            pixels[ry * w..(ry + 1) * w].copy_from_slice(&row);
            (rays, samples, early) = (rays + n.0, samples + n.1, early + n.2);
        }
    }
    if prof::enabled() {
        prof::ticks("raycast.rays", rays);
        prof::ticks("raycast.samples", samples);
        prof::ticks("raycast.early_terminated", early);
    }
    if !any {
        return None;
    }
    Some(Fragment { block: brick.block_id, rect, pixels })
}

/// Shade a premultiplied sample in place.
fn shade(s: &mut Rgba, brick: &Brick, p: Vec3, view_dir: Vec3, lp: &LightingParams) {
    let g = brick.gradient(p);
    let gm = g.length();
    if gm < lp.gradient_floor {
        return;
    }
    let n = g * (1.0 / gm);
    let l = -lp.light_dir.normalized();
    let ndotl = n.dot(l).abs() as f32; // two-sided: volumes have no inside
    let half = (l - view_dir).normalized();
    let spec = (n.dot(half).abs() as f32).powf(lp.shininess) * lp.specular;
    let k = lp.ambient + lp.diffuse * ndotl;
    for c in 0..3 {
        s[c] = s[c] * k + spec * s[3];
    }
}

/// Convenience: resample `block` at `level` and ray-cast it.
///
/// Off-screen blocks are culled *before* the brick is built (part of the
/// view-dependent preprocessing: invisible data costs nothing).
#[allow(clippy::too_many_arguments)]
pub fn render_block(
    mesh: &HexMesh,
    field: &NodeField,
    block: &OctreeBlock,
    level: u8,
    norm: (f32, f32),
    camera: &Camera,
    tf: &TransferFunction,
    params: &RenderParams,
) -> Option<Fragment> {
    camera.project_aabb(&block.root.bounds(mesh.octree().extent()))?;
    let brick = Brick::from_field(mesh, field, block, level, norm);
    render_brick(&brick, camera, tf, params)
}

/// Composite fragments **given in front-to-back order** into a full image
/// — the sequential reference the parallel compositing algorithms must
/// reproduce.
pub fn composite_fragments(fragments: &[&Fragment], width: u32, height: u32) -> RgbaImage {
    let mut img = RgbaImage::new(width, height);
    for f in fragments {
        for y in f.rect.y0..f.rect.y1 {
            for x in f.rect.x0..f.rect.x1 {
                let i = (y * width + x) as usize;
                img.pixels_mut()[i] = over(img.pixels()[i], f.get(x, y));
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use quakeviz_mesh::Aabb;

    /// A constant-value brick.
    fn const_brick(v: f32) -> Brick {
        Brick::from_values(0, Aabb::UNIT, (2, 2, 2), vec![v; 8])
    }

    fn cam(size: u32) -> Camera {
        Camera::look_at(
            Vec3::new(0.5, 0.5, -3.0),
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(0.0, 1.0, 0.0),
            0.7,
            size,
            size,
        )
    }

    fn opaque_tf() -> TransferFunction {
        TransferFunction::new(vec![(0.0, [1.0, 0.0, 0.0, 0.0]), (1.0, [1.0, 0.0, 0.0, 0.9])])
    }

    #[test]
    fn empty_brick_renders_none() {
        let b = const_brick(0.0);
        let got = render_brick(&b, &cam(32), &opaque_tf(), &RenderParams::default());
        assert!(got.is_none(), "transparent brick must contribute nothing");
    }

    #[test]
    fn solid_brick_renders_center() {
        let b = const_brick(1.0);
        let p = RenderParams { step_scale: 0.25, ..Default::default() };
        let f = render_brick(&b, &cam(32), &opaque_tf(), &p).unwrap();
        assert!(!f.rect.is_empty());
        // the center pixel passes through a full-unit chord; with the TF's
        // 0.9 opacity per unit length the accumulated alpha approaches 0.9
        let c = f.get(16, 16);
        assert!(c[3] > 0.8, "center alpha {}", c[3]);
        assert!(c[0] > 0.7 && c[1] < 0.05);
    }

    #[test]
    fn off_screen_brick_none() {
        let b = Brick::from_values(
            0,
            Aabb::new(Vec3::new(100.0, 100.0, 0.0), Vec3::new(101.0, 101.0, 1.0)),
            (2, 2, 2),
            vec![1.0; 8],
        );
        assert!(render_brick(&b, &cam(32), &opaque_tf(), &RenderParams::default()).is_none());
    }

    #[test]
    fn longer_chord_more_opacity() {
        // thin brick vs thick brick with same TF: thick accumulates more
        let thin = Brick::from_values(
            0,
            Aabb::new(Vec3::new(0.0, 0.0, 0.45), Vec3::new(1.0, 1.0, 0.55)),
            (2, 2, 2),
            vec![0.5; 8],
        );
        let thick = const_brick(0.5);
        let tf =
            TransferFunction::new(vec![(0.0, [1.0, 1.0, 1.0, 0.3]), (1.0, [1.0, 1.0, 1.0, 0.3])]);
        // a fixed opacity unit makes optical depth proportional to chord
        let p = RenderParams { step_scale: 0.2, opacity_unit: Some(0.5), ..Default::default() };
        let ft = render_brick(&thin, &cam(33), &tf, &p).unwrap();
        let fk = render_brick(&thick, &cam(33), &tf, &p).unwrap();
        assert!(fk.get(16, 16)[3] > ft.get(16, 16)[3]);
    }

    #[test]
    fn step_size_invariance_of_opacity() {
        // opacity correction: halving the step should barely change alpha
        let b = const_brick(0.6);
        let tf =
            TransferFunction::new(vec![(0.0, [1.0, 1.0, 1.0, 0.4]), (1.0, [1.0, 1.0, 1.0, 0.4])]);
        let p1 = RenderParams { step_scale: 0.5, ..Default::default() };
        let p2 = RenderParams { step_scale: 0.25, ..Default::default() };
        let f1 = render_brick(&b, &cam(33), &tf, &p1).unwrap();
        let f2 = render_brick(&b, &cam(33), &tf, &p2).unwrap();
        let a1 = f1.get(16, 16)[3];
        let a2 = f2.get(16, 16)[3];
        assert!((a1 - a2).abs() < 0.05, "step-size dependent opacity: {a1} vs {a2}");
    }

    #[test]
    fn lighting_changes_image_on_gradient_field() {
        // a brick with a strong internal gradient
        let mut vals = vec![0.0f32; 27];
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    vals[i + 3 * (j + 3 * k)] = i as f32 / 2.0;
                }
            }
        }
        let b = Brick::from_values(0, Aabb::UNIT, (3, 3, 3), vals);
        let tf = opaque_tf();
        let unlit = render_brick(&b, &cam(33), &tf, &RenderParams::default()).unwrap();
        let lit = render_brick(
            &b,
            &cam(33),
            &tf,
            &RenderParams { lighting: Some(LightingParams::default()), ..Default::default() },
        )
        .unwrap();
        assert_ne!(unlit.pixels, lit.pixels, "lighting must alter shading");
    }

    #[test]
    fn composite_fragments_order_matters() {
        let near = Fragment {
            block: 0,
            rect: ScreenRect::new(0, 0, 1, 1),
            pixels: vec![[0.8, 0.0, 0.0, 0.8]],
        };
        let far = Fragment {
            block: 1,
            rect: ScreenRect::new(0, 0, 1, 1),
            pixels: vec![[0.0, 0.8, 0.0, 0.8]],
        };
        let a = composite_fragments(&[&near, &far], 1, 1);
        let b = composite_fragments(&[&far, &near], 1, 1);
        assert!(a.get(0, 0)[0] > a.get(0, 0)[1], "near-first: red dominates");
        assert!(b.get(0, 0)[1] > b.get(0, 0)[0], "far-first: green dominates");
    }

    #[test]
    fn fragment_byte_size() {
        let f =
            Fragment { block: 0, rect: ScreenRect::new(2, 3, 10, 8), pixels: vec![[0.0; 4]; 40] };
        assert_eq!(f.byte_size(), 40 * 16);
    }
}
