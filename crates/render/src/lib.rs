//! # quakeviz-render
//!
//! The parallel adaptive volume renderer (paper §4).
//!
//! Each rendering processor owns a set of octree *blocks*; for every frame
//! it resamples its blocks into regular [`brick`]s at the selected octree
//! level, ray-casts each brick into a screen-space [`Fragment`], and hands
//! the fragments to the compositing stage. The pieces:
//!
//! * [`image`] — premultiplied-RGBA images, the *over* operator, PPM
//!   output, and the comparison metrics (RMS difference, entropy) used to
//!   evaluate adaptive rendering and temporal enhancement.
//! * [`camera`] — a look-at perspective camera with point projection
//!   (fragment screen rects, compositing schedules are view-dependent).
//! * [`transfer`] — piecewise-linear RGBA transfer functions.
//! * [`brick`] — regular resampling of one octree block at a chosen level;
//!   bricks are what the ray caster marches.
//! * [`raycast`] — front-to-back ray casting with early termination and
//!   optional central-difference gradient Blinn-Phong lighting (§6,
//!   Figure 10/11).
//! * [`enhance`] — the temporal-domain enhancement filter (§4.2, Figure 4).
//! * [`adaptive`] — octree level selection from image resolution, data
//!   resolution and a cells-per-pixel budget (§4.1, Figure 3).
//! * [`visibility`] — exact front-to-back ordering of octree blocks for a
//!   given viewpoint (the view-dependent preprocessing of §4 that the
//!   compositing schedule builds on).

pub mod adaptive;
pub mod brick;
pub mod camera;
pub mod enhance;
pub mod image;
pub mod raycast;
pub mod transfer;
pub mod visibility;

pub use adaptive::AdaptivePolicy;
pub use brick::Brick;
pub use camera::Camera;
pub use enhance::TemporalEnhance;
pub use image::{Rgba, RgbaImage, ScreenRect};
pub use raycast::{
    composite_fragments, render_block, render_brick, Fragment, LightingParams, RenderParams,
};
pub use transfer::TransferFunction;
pub use visibility::front_to_back_order;
