//! View-dependent front-to-back ordering of octree blocks.
//!
//! This is the "view-dependent preprocessing step whose cost is very small"
//! of paper §4: before each frame, every processor derives the global
//! visibility order of the octree blocks for the current viewpoint. For an
//! octree (axis-aligned recursive bisection), an exact order exists: at
//! every internal node, visit the child octant containing the eye first,
//! then its face neighbours, edge neighbours and the opposite octant —
//! i.e. children sorted by the number of splitting planes separating them
//! from the eye octant. Compositing fragments in this order reproduces the
//! sequential image exactly.

use quakeviz_mesh::{Loc3, OctreeBlock, Vec3};
use std::collections::HashMap;

/// Indices into `blocks` sorted front-to-back for an eye position
/// (world coordinates; the domain spans `[0, extent]`).
pub fn front_to_back_order(blocks: &[OctreeBlock], extent: Vec3, eye: Vec3) -> Vec<usize> {
    let roots: HashMap<u64, usize> =
        blocks.iter().enumerate().map(|(i, b)| (b.root.key(), i)).collect();
    let mut order = Vec::with_capacity(blocks.len());
    visit(Loc3::ROOT, &roots, extent, eye, &mut order);
    debug_assert_eq!(order.len(), blocks.len(), "every block must be visited exactly once");
    order
}

fn visit(loc: Loc3, roots: &HashMap<u64, usize>, extent: Vec3, eye: Vec3, out: &mut Vec<usize>) {
    if let Some(&i) = roots.get(&loc.key()) {
        out.push(i);
        return;
    }
    if loc.level >= quakeviz_mesh::morton::MAX_LEVEL {
        return;
    }
    // Octant of the eye relative to this cell's centre: bit per axis.
    let b = loc.bounds(extent);
    let c = b.center();
    let eye_oct = (eye.x >= c.x) as usize
        | (((eye.y >= c.y) as usize) << 1)
        | (((eye.z >= c.z) as usize) << 2);
    let children = loc.children();
    // children[k] has octant bits k; fewer differing planes = closer.
    let mut idx: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
    idx.sort_by_key(|&k| (k ^ eye_oct).count_ones());
    // Only recurse into cells that can contain block roots; quick check:
    // any key in `roots` under this child (we avoid an index structure by
    // relying on block sets being shallow — recursion depth = block level).
    for k in idx {
        let child = children[k];
        if subtree_has_root(&child, roots) {
            visit(child, roots, extent, eye, out);
        }
    }
}

fn subtree_has_root(loc: &Loc3, roots: &HashMap<u64, usize>) -> bool {
    // Block decompositions are shallow (block level ≤ ~6), so testing all
    // roots is cheap relative to rendering. Exact containment test.
    roots.keys().any(|&k| {
        let r = Loc3::from_key(k);
        loc.contains(&r)
    })
}

/// Back-to-front order (reverse of [`front_to_back_order`]).
pub fn back_to_front_order(blocks: &[OctreeBlock], extent: Vec3, eye: Vec3) -> Vec<usize> {
    let mut o = front_to_back_order(blocks, extent, eye);
    o.reverse();
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use quakeviz_mesh::{Octree, UniformRefinement};

    fn blocks(level: u8) -> (Vec<OctreeBlock>, Vec3) {
        let extent = Vec3::ONE;
        let t = Octree::build(extent, &UniformRefinement(3));
        (t.blocks(level), extent)
    }

    #[test]
    fn order_is_a_permutation() {
        let (bs, extent) = blocks(2);
        let order = front_to_back_order(&bs, extent, Vec3::new(-2.0, 0.3, 0.4));
        let mut seen = vec![false; bs.len()];
        for &i in &order {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nearest_octant_first() {
        let (bs, extent) = blocks(1); // 8 blocks
        let eye = Vec3::new(-1.0, -1.0, -1.0);
        let order = front_to_back_order(&bs, extent, eye);
        // first block must be the (0,0,0) octant, last the (1,1,1) octant
        let first = &bs[order[0]];
        assert_eq!((first.root.x, first.root.y, first.root.z), (0, 0, 0));
        let last = &bs[order[order.len() - 1]];
        assert_eq!((last.root.x, last.root.y, last.root.z), (1, 1, 1));
    }

    #[test]
    fn distance_monotone_for_outside_eye() {
        // For an eye far outside along a diagonal, front-to-back order
        // must be consistent with the separating-plane partial order; a
        // necessary condition we can check cheaply: the first block is
        // closest and the last is farthest by center distance.
        let (bs, extent) = blocks(2);
        let eye = Vec3::new(-3.0, -2.5, -2.0);
        let order = front_to_back_order(&bs, extent, eye);
        let dist = |i: usize| (bs[i].root.bounds(extent).center() - eye).length();
        let dmin = order.iter().map(|&i| dist(i)).fold(f64::INFINITY, f64::min);
        let dmax = order.iter().map(|&i| dist(i)).fold(0.0, f64::max);
        assert!((dist(order[0]) - dmin).abs() < 1e-12);
        assert!((dist(*order.last().unwrap()) - dmax).abs() < 1e-12);
    }

    #[test]
    fn eye_inside_domain_still_permutes() {
        let (bs, extent) = blocks(2);
        let order = front_to_back_order(&bs, extent, Vec3::new(0.3, 0.6, 0.5));
        assert_eq!(order.len(), bs.len());
    }

    #[test]
    fn mixed_level_blocks_covered() {
        // adaptive octree: blocks at different levels
        struct Corner;
        impl quakeviz_mesh::RefineOracle for Corner {
            fn refine(&self, _l: &Loc3, b: &quakeviz_mesh::Aabb) -> bool {
                b.min.x < 0.25 && b.min.y < 0.25 && b.min.z < 0.25
            }
            fn max_level(&self) -> u8 {
                4
            }
            fn min_level(&self) -> u8 {
                1
            }
        }
        let extent = Vec3::ONE;
        let t = Octree::build(extent, &Corner);
        let bs = t.blocks(2);
        let order = front_to_back_order(&bs, extent, Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(order.len(), bs.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..bs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn back_to_front_is_reverse() {
        let (bs, extent) = blocks(1);
        let eye = Vec3::new(-1.0, 0.5, 0.5);
        let f = front_to_back_order(&bs, extent, eye);
        let mut b = back_to_front_order(&bs, extent, eye);
        b.reverse();
        assert_eq!(f, b);
    }
}
