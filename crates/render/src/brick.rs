//! Regular resampling of octree blocks ("bricks").
//!
//! A rendering processor receives octree blocks (subtrees) plus the node
//! data for their cells. For ray casting, each block is resampled onto a
//! small regular grid at the *selected octree level* — the knob adaptive
//! rendering turns (§4.1): level `max_leaf_level` reproduces the mesh
//! exactly where it is finest; coarser levels sample fewer points and the
//! brick (and its marching cost) shrinks by 8× per level.

use crate::image::Rgba;
use quakeviz_mesh::{Aabb, HexMesh, NodeField, OctreeBlock, Vec3};

/// A regular scalar grid over one octree block's bounds, values normalized
/// to `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Brick {
    /// Id of the source block.
    pub block_id: u32,
    /// World bounds of the block.
    pub bounds: Aabb,
    /// Node counts per axis (≥ 2).
    dims: (usize, usize, usize),
    values: Vec<f32>,
}

impl Brick {
    /// Resample `block` from `field` at octree `level` (clamped to the
    /// block's root level and the mesh's finest level), normalizing by
    /// `(lo, hi)`.
    pub fn from_field(
        mesh: &HexMesh,
        field: &NodeField,
        block: &OctreeBlock,
        level: u8,
        norm: (f32, f32),
    ) -> Brick {
        let max = mesh.octree().max_leaf_level();
        let level = level.clamp(block.root.level, max);
        let n = 1usize << (level - block.root.level); // cells per axis
        let dims = (n + 1, n + 1, n + 1);
        let (ax, ay, az) = block.root.anchor_at_level(max);
        let step = 1u32 << (max - level);
        let bounds = block.root.bounds(mesh.octree().extent());
        let scale = if norm.1 > norm.0 { 1.0 / (norm.1 - norm.0) } else { 0.0 };

        let mut values = Vec::with_capacity(dims.0 * dims.1 * dims.2);
        for k in 0..dims.2 as u32 {
            for j in 0..dims.1 as u32 {
                for i in 0..dims.0 as u32 {
                    let (gx, gy, gz) = (ax + i * step, ay + j * step, az + k * step);
                    let raw = match mesh.node_at(gx, gy, gz) {
                        Some(id) => field.get(id),
                        None => {
                            // grid point interior to a coarser cell: sample
                            let e = mesh.octree().extent();
                            let nfine = (1u64 << max) as f64;
                            let p = Vec3::new(
                                gx as f64 / nfine * e.x,
                                gy as f64 / nfine * e.y,
                                gz as f64 / nfine * e.z,
                            );
                            // nudge boundary points inward so leaf lookup hits
                            let eps = 1e-9;
                            let q = Vec3::new(
                                p.x.min(e.x * (1.0 - eps)),
                                p.y.min(e.y * (1.0 - eps)),
                                p.z.min(e.z * (1.0 - eps)),
                            );
                            field.sample(mesh, q).unwrap_or(0.0)
                        }
                    };
                    values.push(((raw - norm.0) * scale).clamp(0.0, 1.0));
                }
            }
        }
        Brick { block_id: block.id, bounds, dims, values }
    }

    /// Build directly from raw normalized values (tests, synthetic data).
    pub fn from_values(
        block_id: u32,
        bounds: Aabb,
        dims: (usize, usize, usize),
        values: Vec<f32>,
    ) -> Brick {
        assert!(dims.0 >= 2 && dims.1 >= 2 && dims.2 >= 2, "brick needs ≥2 nodes per axis");
        assert_eq!(values.len(), dims.0 * dims.1 * dims.2);
        Brick { block_id, bounds, dims, values }
    }

    /// Node counts per axis.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Total stored samples.
    #[inline]
    pub fn sample_count(&self) -> usize {
        self.values.len()
    }

    /// Smallest cell edge in world units (ray-march step base).
    pub fn min_spacing(&self) -> f64 {
        let e = self.bounds.extent();
        (e.x / (self.dims.0 - 1) as f64)
            .min(e.y / (self.dims.1 - 1) as f64)
            .min(e.z / (self.dims.2 - 1) as f64)
    }

    #[inline]
    fn at(&self, i: usize, j: usize, k: usize) -> f32 {
        self.values[i + self.dims.0 * (j + self.dims.1 * k)]
    }

    /// Trilinear sample at world point `p` (clamped into the brick).
    pub fn sample(&self, p: Vec3) -> f32 {
        let e = self.bounds.extent();
        let fx = (((p.x - self.bounds.min.x) / e.x).clamp(0.0, 1.0)) * (self.dims.0 - 1) as f64;
        let fy = (((p.y - self.bounds.min.y) / e.y).clamp(0.0, 1.0)) * (self.dims.1 - 1) as f64;
        let fz = (((p.z - self.bounds.min.z) / e.z).clamp(0.0, 1.0)) * (self.dims.2 - 1) as f64;
        let (i0, j0, k0) = (fx as usize, fy as usize, fz as usize);
        let (i1, j1, k1) = (
            (i0 + 1).min(self.dims.0 - 1),
            (j0 + 1).min(self.dims.1 - 1),
            (k0 + 1).min(self.dims.2 - 1),
        );
        let (u, v, w) = ((fx - i0 as f64) as f32, (fy - j0 as f64) as f32, (fz - k0 as f64) as f32);
        let c00 = self.at(i0, j0, k0) * (1.0 - u) + self.at(i1, j0, k0) * u;
        let c10 = self.at(i0, j1, k0) * (1.0 - u) + self.at(i1, j1, k0) * u;
        let c01 = self.at(i0, j0, k1) * (1.0 - u) + self.at(i1, j0, k1) * u;
        let c11 = self.at(i0, j1, k1) * (1.0 - u) + self.at(i1, j1, k1) * u;
        let c0 = c00 * (1.0 - v) + c10 * v;
        let c1 = c01 * (1.0 - v) + c11 * v;
        c0 * (1.0 - w) + c1 * w
    }

    /// Central-difference gradient at `p` (world units), for lighting.
    pub fn gradient(&self, p: Vec3) -> Vec3 {
        let h = self.min_spacing();
        let gx = (self.sample(p + Vec3::new(h, 0.0, 0.0)) - self.sample(p - Vec3::new(h, 0.0, 0.0)))
            as f64;
        let gy = (self.sample(p + Vec3::new(0.0, h, 0.0)) - self.sample(p - Vec3::new(0.0, h, 0.0)))
            as f64;
        let gz = (self.sample(p + Vec3::new(0.0, 0.0, h)) - self.sample(p - Vec3::new(0.0, 0.0, h)))
            as f64;
        Vec3::new(gx, gy, gz) * (0.5 / h)
    }

    /// Mean value (diagnostics).
    pub fn mean(&self) -> f32 {
        self.values.iter().sum::<f32>() / self.values.len() as f32
    }
}

/// A color brick variant for precomputed emission (not used by the core
/// path but handy for LIC texture slabs).
#[derive(Debug, Clone)]
pub struct ColorBrick {
    pub bounds: Aabb,
    pub dims: (usize, usize),
    pub texels: Vec<Rgba>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use quakeviz_mesh::{HexMesh, NodeField, Octree, UniformRefinement};

    fn mesh() -> HexMesh {
        HexMesh::from_octree(Octree::build(Vec3::ONE, &UniformRefinement(3)))
    }

    fn x_field(m: &HexMesh) -> NodeField {
        let mut f = NodeField::zeros(m);
        for id in 0..m.node_count() as u32 {
            f.set(id, m.node_position(id).x as f32);
        }
        f
    }

    #[test]
    fn brick_dims_follow_level() {
        let m = mesh();
        let f = x_field(&m);
        let blocks = m.octree().blocks(1);
        let b3 = Brick::from_field(&m, &f, &blocks[0], 3, (0.0, 1.0));
        assert_eq!(b3.dims(), (5, 5, 5)); // 2^(3-1)+1
        let b1 = Brick::from_field(&m, &f, &blocks[0], 1, (0.0, 1.0));
        assert_eq!(b1.dims(), (2, 2, 2));
        // requesting deeper than the mesh clamps
        let b9 = Brick::from_field(&m, &f, &blocks[0], 9, (0.0, 1.0));
        assert_eq!(b9.dims(), (5, 5, 5));
    }

    #[test]
    fn brick_reproduces_linear_field() {
        let m = mesh();
        let f = x_field(&m);
        let blocks = m.octree().blocks(1);
        for block in &blocks[..2] {
            let brick = Brick::from_field(&m, &f, block, 3, (0.0, 1.0));
            for p in [brick.bounds.center(), brick.bounds.min + brick.bounds.extent() * 0.25] {
                let got = brick.sample(p);
                assert!((got - p.x as f32).abs() < 1e-5, "at {p:?}: {got} vs {}", p.x);
            }
        }
    }

    #[test]
    fn normalization_clamps() {
        let m = mesh();
        let f = x_field(&m); // values 0..1
        let block = &m.octree().blocks(0)[0];
        let b = Brick::from_field(&m, &f, block, 2, (0.25, 0.75));
        // raw 0.0 -> clamped 0; raw 1.0 -> clamped 1
        assert_eq!(b.sample(Vec3::new(0.0, 0.5, 0.5)), 0.0);
        assert_eq!(b.sample(Vec3::new(0.9999, 0.5, 0.5)), 1.0);
        let mid = b.sample(Vec3::new(0.5, 0.5, 0.5));
        assert!((mid - 0.5).abs() < 1e-5);
    }

    #[test]
    fn gradient_of_linear_field_is_constant() {
        let m = mesh();
        let f = x_field(&m);
        let block = &m.octree().blocks(0)[0];
        let b = Brick::from_field(&m, &f, block, 3, (0.0, 1.0));
        let g = b.gradient(Vec3::new(0.5, 0.5, 0.5));
        assert!((g.x - 1.0).abs() < 1e-3, "ddx should be 1, got {}", g.x);
        assert!(g.y.abs() < 1e-3 && g.z.abs() < 1e-3);
    }

    #[test]
    fn min_spacing_scales_with_level() {
        let m = mesh();
        let f = x_field(&m);
        let block = &m.octree().blocks(1)[0];
        let fine = Brick::from_field(&m, &f, block, 3, (0.0, 1.0));
        let coarse = Brick::from_field(&m, &f, block, 2, (0.0, 1.0));
        assert!((coarse.min_spacing() - 2.0 * fine.min_spacing()).abs() < 1e-12);
        assert!(coarse.sample_count() < fine.sample_count());
    }

    #[test]
    fn sample_clamps_outside_bounds() {
        let b = Brick::from_values(
            0,
            Aabb::UNIT,
            (2, 2, 2),
            vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
        );
        assert_eq!(b.sample(Vec3::new(-5.0, 0.0, 0.0)), 0.0);
        assert_eq!(b.sample(Vec3::new(5.0, 0.0, 0.0)), 1.0);
    }
}
